//! The regression corpus: recipes that re-trigger each of the paper's 14
//! Table 2 bugs plus the six bugs planted in the lock-free suite
//! (Treiber stack, Harris list, Michael–Scott queue; ids 15–20), record
//! them as repro artifacts, and validate the artifacts by replaying them.
//!
//! A [`Recipe`] is a *deterministic variant* of what the fuzzer does when
//! it finds the bug organically: a workload known to reach the buggy
//! code, an optional forced sync plan (the Fig. 6 conditional-wait
//! scheduler pointed at the racy address, as the interleaving tier would),
//! and a selector that recognizes the finding in the detection ledger.
//! [`build_corpus`] runs every recipe, keeps only captures that *replay
//! successfully*, and stores them — the checked-in `repros/` directory CI
//! replays on every change is produced this way.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pmrace_api::Op;
use pmrace_core::schedule::{EventCapture, PlanCapture, ScheduleCapture, StrategyCapture};
use pmrace_core::{run_campaign, BugKind, CampaignConfig, CampaignResult, Ledger, Seed};
use pmrace_runtime::{site_label, RtError, Site};
use pmrace_sched::{
    PmraceStrategy, RecordingStrategy, ScheduleLog, SkipStore, SyncPlan, SyncTuning,
};
use pmrace_targets::target_spec;

use crate::artifact::{BugSignature, Repro};
use crate::replayer::{replay, ReplayOptions};
use crate::store::ReproStore;

/// How a recipe recognizes its bug in a detection ledger.
#[derive(Debug, Clone, Copy)]
pub enum Select {
    /// A validated inconsistency triple, by site-label substrings.
    Triple {
        /// `Inter` or `Intra`.
        kind: BugKind,
        /// Write-site substring (empty matches anything).
        write: &'static str,
        /// Read-site substring.
        read: &'static str,
        /// Effect-site substring.
        effect: &'static str,
    },
    /// A candidate pair that never grew a durable side effect.
    Candidate {
        /// Write-site substring.
        write: &'static str,
        /// Read-site substring.
        read: &'static str,
    },
    /// A synchronization bug, by sync-variable substring.
    Sync(&'static str),
    /// A hang.
    Hang,
}

impl Select {
    /// The signature of the matching finding in `ledger`, if it fired.
    fn pick(&self, ledger: &Ledger) -> Option<(BugSignature, String)> {
        match *self {
            Select::Triple {
                kind,
                write,
                read,
                effect,
            } => ledger
                .bug_triples()
                .iter()
                .find(|(w, r, e)| w.contains(write) && r.contains(read) && e.contains(effect))
                .map(|(w, r, e)| {
                    (
                        BugSignature::triple(&kind.to_string(), w, r, e),
                        format!("{kind} inconsistency: write {w}, read {r}, effect {e}"),
                    )
                }),
            Select::Candidate { write, read } => ledger
                .candidate_only_pairs()
                .iter()
                .find(|(w, r)| w.contains(write) && r.contains(read))
                .map(|(w, r)| {
                    (
                        BugSignature::candidate(w, r),
                        format!("candidate: read of non-persisted data (write {w}, read {r})"),
                    )
                }),
            Select::Sync(var) => ledger
                .bugs()
                .into_iter()
                .find(|b| b.kind == BugKind::Sync && b.write_label.contains(var))
                .map(|b| (BugSignature::from_bug(b), b.description.clone())),
            Select::Hang => ledger
                .bugs()
                .into_iter()
                .find(|b| b.kind == BugKind::Hang)
                .map(|b| (BugSignature::from_bug(b), b.description.clone())),
        }
    }
}

/// One corpus bug: how to trigger, recognize, and record it.
#[derive(Debug, Clone, Copy)]
pub struct Recipe {
    /// Corpus bug number (1–14 = Table 2, 15–20 = lock-free suite).
    pub bug_id: u32,
    /// Target system.
    pub target: &'static str,
    /// Recognition rule.
    pub select: Select,
    /// `(read marker, write marker)`: force a conditional-wait plan on the
    /// shared address recon surfaces for these labels. `None` = the bug
    /// fires under free scheduling.
    pub plan: Option<(&'static str, &'static str)>,
    /// Scheduled rounds to try after the free recon round.
    pub rounds: u64,
    /// Driver threads.
    pub threads: usize,
    /// Campaign deadline.
    pub deadline: Duration,
    /// Workload builder.
    pub seed: fn() -> Seed,
}

fn pclht_resize_seed() -> Seed {
    let ops: Vec<Op> = (0..96)
        .map(|i| Op::Insert {
            key: (i % 48) + 1,
            value: i + 1,
        })
        .collect();
    Seed::from_flat(&ops, 4)
}

fn pclht_single_resize_seed() -> Seed {
    let ops: Vec<Op> = (1..=130u64)
        .map(|k| Op::Insert { key: k, value: k })
        .collect();
    Seed::from_flat(&ops, 1)
}

fn pclht_hot_seed() -> Seed {
    let ops: Vec<Op> = (0..80)
        .map(|i| {
            if i % 2 == 0 {
                Op::Insert {
                    key: (i % 4) + 1,
                    value: i + 1,
                }
            } else {
                Op::Get { key: (i % 4) + 1 }
            }
        })
        .collect();
    Seed::from_flat(&ops, 4)
}

fn pclht_hang_seed() -> Seed {
    Seed::new(vec![vec![
        Op::Insert { key: 1, value: 1 },
        Op::Update { key: 1, value: 1 },
        Op::Insert { key: 1, value: 3 },
    ]])
}

fn cceh_seed() -> Seed {
    let ops: Vec<Op> = (1..=64u64)
        .map(|k| Op::Insert { key: k, value: k })
        .collect();
    Seed::from_flat(&ops, 4)
}

fn cceh_single_resize_seed() -> Seed {
    let ops: Vec<Op> = (1..=200u64)
        .map(|k| Op::Insert { key: k, value: k })
        .collect();
    Seed::from_flat(&ops, 1)
}

fn fastfair_seed() -> Seed {
    let ops: Vec<Op> = (0..96)
        .map(|i| Op::Insert {
            key: (i * 7 % 48) + 1,
            value: i + 1,
        })
        .collect();
    Seed::from_flat(&ops, 4)
}

fn memkv_mixed_seed() -> Seed {
    let ops: Vec<Op> = (0..96)
        .map(|i| match i % 3 {
            0 => Op::Insert {
                key: (i % 4) + 1,
                value: i + 1,
            },
            1 => Op::Incr {
                key: (i % 4) + 1,
                by: 1,
            },
            _ => Op::Get { key: (i % 4) + 1 },
        })
        .collect();
    Seed::from_flat(&ops, 4)
}

/// Distinct-key churn past `MAX_ITEMS`, forcing LRU evictions, mixed with
/// hot-key traffic that relinks items — the workloads behind the
/// memcached LRU/slab bugs (11, 12, 14) and P-CLHT/memkv update races.
fn memkv_churn_seed() -> Seed {
    let ops: Vec<Op> = (0..160)
        .map(|i| match i % 4 {
            0 | 1 => Op::Insert {
                key: i + 100,
                value: i,
            },
            2 => Op::Get { key: (i % 8) + 100 },
            _ => Op::Insert {
                key: (i % 8) + 100,
                value: i,
            },
        })
        .collect();
    Seed::from_flat(&ops, 4)
}

/// The lock-free suite targets split driver roles by thread id: thread 0
/// consumes (pop/dequeue/get/delete), every other thread produces
/// (push/enqueue/insert). These builders hand each role its own op list
/// so the planted bugs are inter-thread by construction.
fn lockfree_seed(consumer: Vec<Op>, producer_rounds: u64) -> Seed {
    let producer = |salt: u64| -> Vec<Op> {
        (0..producer_rounds)
            .map(|i| Op::Insert {
                key: ((i + salt) % 3) + 1,
                value: i + 1,
            })
            .collect()
    };
    Seed::new(vec![consumer, producer(0), producer(1), producer(2)])
}

/// Treiber stack: three pushers on hot keys, one popper (with the odd
/// peek) racing the unflushed `TOP` and payloads.
fn lockfree_stack_seed() -> Seed {
    let consumer = (0..24u64)
        .map(|i| {
            if i % 6 == 5 {
                Op::Get { key: 1 }
            } else {
                Op::Delete { key: 1 }
            }
        })
        .collect();
    lockfree_seed(consumer, 16)
}

/// Harris list: three inserters traversing (and helping) while thread 0
/// alternates lookups (racy payload reads) and deletions (unfenced
/// marks).
fn lockfree_list_seed() -> Seed {
    let consumer = (0..24u64)
        .map(|i| {
            if i % 2 == 0 {
                Op::Get { key: (i % 3) + 1 }
            } else {
                Op::Delete { key: (i % 3) + 1 }
            }
        })
        .collect();
    lockfree_seed(consumer, 16)
}

/// Michael–Scott queue: three enqueuers racing each other through the
/// two-CAS window (the helping path needs ≥2 producers) while thread 0
/// dequeues.
fn lockfree_queue_seed() -> Seed {
    let consumer = (0..24u64)
        .map(|i| {
            if i % 6 == 5 {
                Op::Get { key: 1 }
            } else {
                Op::Delete { key: 1 }
            }
        })
        .collect();
    lockfree_seed(consumer, 16)
}

/// The recipes for the 14 unique Table 2 bugs, in table order, followed
/// by the six planted lock-free-suite bugs (15–20).
#[must_use]
pub fn recipes() -> Vec<Recipe> {
    let s3 = Duration::from_secs(3);
    let s5 = Duration::from_secs(5);
    vec![
        Recipe {
            bug_id: 1,
            target: "P-CLHT",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "785",
                read: "417",
                effect: "",
            },
            plan: Some(("417", "785")),
            rounds: 12,
            threads: 4,
            deadline: s3,
            seed: pclht_resize_seed,
        },
        Recipe {
            bug_id: 2,
            target: "P-CLHT",
            select: Select::Sync("clht.bucket_lock"),
            plan: None,
            rounds: 3,
            threads: 1,
            deadline: s5,
            seed: pclht_single_resize_seed,
        },
        Recipe {
            bug_id: 3,
            target: "P-CLHT",
            select: Select::Triple {
                kind: BugKind::Intra,
                write: "789",
                read: "clht_gc.c:190",
                effect: "gc_log",
            },
            plan: None,
            rounds: 3,
            threads: 1,
            deadline: s5,
            seed: pclht_single_resize_seed,
        },
        Recipe {
            bug_id: 4,
            target: "P-CLHT",
            select: Select::Candidate {
                write: "321",
                read: "616",
            },
            plan: Some(("616", "321")),
            rounds: 12,
            threads: 4,
            deadline: s3,
            seed: pclht_hot_seed,
        },
        Recipe {
            bug_id: 5,
            target: "P-CLHT",
            select: Select::Hang,
            plan: None,
            rounds: 1,
            threads: 1,
            deadline: Duration::from_millis(150),
            seed: pclht_hang_seed,
        },
        Recipe {
            bug_id: 6,
            target: "CCEH",
            select: Select::Sync("cceh.segment_lock"),
            plan: None,
            rounds: 3,
            threads: 4,
            deadline: s3,
            seed: cceh_seed,
        },
        Recipe {
            bug_id: 7,
            target: "CCEH",
            select: Select::Triple {
                kind: BugKind::Intra,
                write: "CCEH.h:165",
                read: "171",
                effect: "",
            },
            plan: None,
            rounds: 3,
            threads: 1,
            deadline: s5,
            seed: cceh_single_resize_seed,
        },
        Recipe {
            bug_id: 8,
            target: "FAST-FAIR",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "560",
                read: "876",
                effect: "",
            },
            plan: Some(("876", "560")),
            rounds: 24,
            threads: 4,
            deadline: s3,
            seed: fastfair_seed,
        },
        Recipe {
            bug_id: 9,
            target: "memcached-pmem",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "",
                read: "2805",
                effect: "4292",
            },
            plan: None,
            rounds: 12,
            threads: 4,
            deadline: s3,
            seed: memkv_mixed_seed,
        },
        Recipe {
            bug_id: 10,
            target: "memcached-pmem",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "",
                read: "2805",
                effect: "4293",
            },
            plan: None,
            rounds: 12,
            threads: 4,
            deadline: s3,
            seed: memkv_mixed_seed,
        },
        Recipe {
            bug_id: 11,
            target: "memcached-pmem",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "",
                read: "items.c:464",
                effect: "items.c:464.store_clsid",
            },
            plan: None,
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: memkv_churn_seed,
        },
        Recipe {
            bug_id: 12,
            target: "memcached-pmem",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "",
                read: "slabs.c:412",
                effect: "store_it_flags",
            },
            plan: None,
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: memkv_churn_seed,
        },
        Recipe {
            bug_id: 13,
            target: "memcached-pmem",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "",
                read: "2824",
                effect: "store_value_header",
            },
            plan: None,
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: memkv_churn_seed,
        },
        Recipe {
            bug_id: 14,
            target: "memcached-pmem",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "",
                read: "items.c:623",
                effect: "items.c:627",
            },
            plan: None,
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: memkv_churn_seed,
        },
        // 15–20: the lock-free persistent data-structure suite. All six
        // are PM inter-thread inconsistencies planted around CAS
        // publication (see `crates/lockfree`).
        Recipe {
            // Treiber stack: pop reads the never-flushed TOP published by
            // a pusher's CAS and durably logs the popped source node.
            bug_id: 15,
            target: "treiber-stack",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "tstack.c:63",
                read: "tstack.c:74",
                effect: "tstack.c:89",
            },
            plan: Some(("tstack.c:74", "tstack.c:63")),
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: lockfree_stack_seed,
        },
        Recipe {
            // Treiber stack: the node payload is a plain store behind the
            // durably-linked node; pop logs the read value.
            bug_id: 16,
            target: "treiber-stack",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "tstack.c:52",
                read: "tstack.c:86",
                effect: "tstack.c:91",
            },
            plan: Some(("tstack.c:86", "tstack.c:52")),
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: lockfree_stack_seed,
        },
        Recipe {
            // Harris list: unflushed payload behind the durable link,
            // observed by a lookup that durably logs what it found.
            bug_id: 17,
            target: "harris-list",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "hlist.c:49",
                read: "hlist.c:103",
                effect: "hlist.c:105",
            },
            plan: Some(("hlist.c:103", "hlist.c:49")),
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: lockfree_list_seed,
        },
        Recipe {
            // Harris list: the logical-deletion mark is clwb'd but never
            // fenced; a helping traversal reads it and durably logs the
            // unlink it completed.
            bug_id: 18,
            target: "harris-list",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "hlist.c:88",
                read: "hlist.c:65",
                effect: "hlist.c:70",
            },
            plan: Some(("hlist.c:65", "hlist.c:88")),
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: lockfree_list_seed,
        },
        Recipe {
            // MS queue: the linking CAS on tail.next is never flushed; a
            // helping producer swings TAIL over the half-linked node and
            // durably logs the repair.
            bug_id: 19,
            target: "ms-queue",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "msq.c:62",
                read: "msq.c:59",
                effect: "msq.c:72",
            },
            plan: Some(("msq.c:59", "msq.c:62")),
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: lockfree_queue_seed,
        },
        Recipe {
            // MS queue: unflushed payload behind the link; the consumer
            // durably logs the dequeued value.
            bug_id: 20,
            target: "ms-queue",
            select: Select::Triple {
                kind: BugKind::Inter,
                write: "msq.c:52",
                read: "msq.c:90",
                effect: "msq.c:95",
            },
            plan: Some(("msq.c:90", "msq.c:52")),
            rounds: 16,
            threads: 4,
            deadline: s3,
            seed: lockfree_queue_seed,
        },
    ]
}

/// One successfully built artifact.
#[derive(Debug)]
pub struct BuiltRepro {
    /// Table 2 bug number.
    pub bug_id: u32,
    /// The recorded signature.
    pub signature: BugSignature,
    /// Where it was stored.
    pub path: std::path::PathBuf,
    /// Rounds it took to capture a replay-validated schedule.
    pub rounds_used: u64,
}

/// Build (or rebuild) the full 20-bug corpus in `dir` (the 14 Table 2
/// bugs plus the six planted lock-free-suite bugs).
///
/// Each recipe runs until a round both *fires* the bug and produces a
/// capture that *replays* (validated before storing) — so everything this
/// function writes is known-reproducible.
///
/// # Errors
///
/// [`RtError::Io`] naming the first bug whose recipe failed to produce a
/// validated artifact within its round budget.
pub fn build_corpus(dir: &Path) -> Result<Vec<BuiltRepro>, RtError> {
    let store = ReproStore::open(dir)?;
    let mut built = Vec::new();
    for recipe in recipes() {
        built.push(build_recipe(&recipe, &store)?);
    }
    Ok(built)
}

/// Run one recipe until it yields a validated, stored artifact.
///
/// # Errors
///
/// [`RtError::Io`] when the bug does not fire (validated) in the budget.
pub fn build_recipe(recipe: &Recipe, store: &ReproStore) -> Result<BuiltRepro, RtError> {
    // Recipes span both suites; make sure every target they name can
    // resolve through the registry.
    pmrace_targets::register_builtins();
    pmrace_lockfree::register_lockfree();
    let spec = target_spec(recipe.target)
        .ok_or_else(|| RtError::Io(format!("unknown target '{}'", recipe.target)))?;
    let seed = (recipe.seed)();
    let cfg = CampaignConfig {
        threads: recipe.threads,
        deadline: recipe.deadline,
        ..CampaignConfig::default()
    };
    let start = Instant::now();
    let free_capture = ScheduleCapture {
        strategy: StrategyCapture::None,
        threads: cfg.threads,
        tuning: SyncTuning::default(),
        eviction_interval_us: cfg.eviction_interval_us,
        eadr: cfg.eadr,
        deadline: cfg.deadline,
        extra_whitelist: cfg.extra_whitelist.clone(),
    };

    // Round 0: free scheduling. Doubles as the recon run that registers
    // sites and surfaces the shared-access table for plan resolution.
    let recon = run_campaign(&spec, &seed, &cfg, None, None)?;
    let mut ledger = Ledger::new(spec);
    let _ = ledger.ingest_with_seed(&recon, start.elapsed(), Some(&seed));
    if let Some(found) = try_finish(recipe, &ledger, &seed, &free_capture, store, 0)? {
        return Ok(found);
    }

    let plan = match recipe.plan {
        None => None,
        Some((read_marker, write_marker)) => Some(
            forced_plan(&recon, read_marker, write_marker).ok_or_else(|| {
                RtError::Io(format!(
                    "bug {}: recon did not surface the {write_marker} -> {read_marker} address",
                    recipe.bug_id
                ))
            })?,
        ),
    };

    for round in 0..recipe.rounds {
        let mut ledger = Ledger::new(spec);
        let capture = match &plan {
            None => {
                let res = run_campaign(&spec, &seed, &cfg, None, None)?;
                let _ = ledger.ingest_with_seed(&res, start.elapsed(), Some(&seed));
                free_capture.clone()
            }
            Some(plan) => {
                let strategy = PmraceStrategy::new(
                    plan.clone(),
                    cfg.threads,
                    Arc::new(SkipStore::new()),
                    SyncTuning::default(),
                    round,
                );
                let skips: Vec<(String, u32)> = strategy
                    .initial_skips()
                    .iter()
                    .map(|(id, n)| (site_label(Site::from_id(*id)).to_owned(), *n))
                    .collect();
                let log = Arc::new(ScheduleLog::new(plan.off));
                let recording =
                    Arc::new(RecordingStrategy::new(Arc::new(strategy), Arc::clone(&log)));
                let res = run_campaign(&spec, &seed, &cfg, Some(recording), None)?;
                let _ = ledger.ingest_with_seed(&res, start.elapsed(), Some(&seed));
                let (events, truncated) = log.snapshot();
                ScheduleCapture {
                    strategy: StrategyCapture::Pmrace {
                        plan: PlanCapture {
                            off: plan.off,
                            load_sites: labels_of(&plan.load_sites),
                            store_sites: labels_of(&plan.store_sites),
                            cas_sites: labels_of(&plan.cas_sites),
                        },
                        rng_seed: round,
                        skips,
                        events: events
                            .into_iter()
                            .map(|e| EventCapture {
                                is_load: e.is_load,
                                site: site_label(e.site).to_owned(),
                                tid: e.tid,
                            })
                            .collect(),
                        truncated,
                    },
                    ..free_capture.clone()
                }
            }
        };
        if let Some(found) = try_finish(recipe, &ledger, &seed, &capture, store, round + 1)? {
            return Ok(found);
        }
    }
    Err(RtError::Io(format!(
        "bug {}: did not fire with a replayable capture within {} rounds",
        recipe.bug_id, recipe.rounds
    )))
}

/// If the recipe's bug fired in this round's ledger, build the artifact,
/// validate it by replaying, and store it. `Ok(None)` = keep trying.
fn try_finish(
    recipe: &Recipe,
    ledger: &Ledger,
    seed: &Seed,
    capture: &ScheduleCapture,
    store: &ReproStore,
    round: u64,
) -> Result<Option<BuiltRepro>, RtError> {
    let Some((signature, description)) = recipe.select.pick(ledger) else {
        return Ok(None);
    };
    let repro = Repro::from_capture(
        recipe.target,
        signature.clone(),
        &description,
        &seed.to_text(),
        capture,
    );
    let validation = replay(&repro, &ReplayOptions::default())?;
    if !validation.matched {
        // The bug fired but this capture does not replay — a later round
        // (different RNG seed / skips) may produce a sturdier one.
        return Ok(None);
    }
    let path = store.save(&repro)?;
    Ok(Some(BuiltRepro {
        bug_id: recipe.bug_id,
        signature,
        path,
        rounds_used: round,
    }))
}

/// The deterministic-variant plan builder the end-to-end tests use: the
/// first recon shared-access entry whose loads/stores match the markers.
fn forced_plan(recon: &CampaignResult, read_marker: &str, write_marker: &str) -> Option<SyncPlan> {
    let entry = recon.shared.iter().find(|e| {
        e.load_sites
            .iter()
            .any(|(s, _)| site_label(*s).contains(read_marker))
            && e.store_sites
                .iter()
                .any(|(s, _)| site_label(*s).contains(write_marker))
    })?;
    Some(SyncPlan {
        off: entry.off,
        load_sites: entry
            .load_sites
            .iter()
            .filter(|(s, _)| site_label(*s).contains(read_marker))
            .map(|(s, _)| s.id())
            .collect(),
        store_sites: entry
            .store_sites
            .iter()
            .filter(|(s, _)| site_label(*s).contains(write_marker))
            .map(|(s, _)| s.id())
            .collect(),
        // Every CAS observed on the granule becomes a retry decision
        // point: stalling failed attempts widens the racy window the plan
        // is trying to hit.
        cas_sites: entry.cas_sites.iter().map(|(s, _)| s.id()).collect(),
    })
}

fn labels_of(ids: &std::collections::HashSet<u32>) -> Vec<String> {
    let mut labels: Vec<String> = ids
        .iter()
        .map(|id| site_label(Site::from_id(*id)).to_owned())
        .collect();
    labels.sort();
    labels
}

/// One corpus entry's replay result.
#[derive(Debug)]
pub struct CorpusReplayResult {
    /// Artifact path.
    pub path: std::path::PathBuf,
    /// Signature key.
    pub key: String,
    /// Replay outcome.
    pub matched: bool,
    /// Divergence report, if the strict replay drifted.
    pub divergence: Option<String>,
    /// Wall-clock time of this replay.
    pub duration: Duration,
}

/// Replay every artifact in `dir` (the CI regression gate).
///
/// # Errors
///
/// [`RtError::Io`] for an unreadable or corrupt corpus; per-artifact
/// replay failures are reported in the results, not as errors.
pub fn replay_corpus(dir: &Path, opts: &ReplayOptions) -> Result<Vec<CorpusReplayResult>, RtError> {
    let store = ReproStore::open(dir)?;
    let mut results = Vec::new();
    for (path, repro) in store.load_all()? {
        let out = replay(&repro, opts)?;
        results.push(CorpusReplayResult {
            path,
            key: repro.signature.key(),
            matched: out.matched,
            divergence: out.divergence,
            duration: out.duration,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipes_cover_table2_and_the_lockfree_suite() {
        pmrace_targets::register_builtins();
        pmrace_lockfree::register_lockfree();
        let r = recipes();
        assert_eq!(r.len(), 20, "14 Table 2 bugs + 6 lock-free suite bugs");
        let ids: Vec<u32> = r.iter().map(|x| x.bug_id).collect();
        assert_eq!(ids, (1..=20).collect::<Vec<u32>>());
        for recipe in &r {
            assert!(
                target_spec(recipe.target).is_some(),
                "bug {} names unknown target {}",
                recipe.bug_id,
                recipe.target
            );
            assert!((recipe.seed)().num_ops() > 0);
        }
    }

    #[test]
    fn hang_recipe_builds_and_validates() {
        // The cheapest recipe end-to-end: bug 5 is deterministic.
        let dir = std::env::temp_dir().join(format!("pmrace-corpus-hang-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ReproStore::open(&dir).unwrap();
        let recipe = recipes().into_iter().find(|r| r.bug_id == 5).unwrap();
        let built = build_recipe(&recipe, &store).unwrap();
        assert_eq!(built.signature.kind, "Hang");
        assert!(built.path.exists());
        let results = replay_corpus(&dir, &ReplayOptions::default()).unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].matched);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

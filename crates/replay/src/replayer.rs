//! Replay a repro artifact and check that the recorded finding re-fires.
//!
//! Site ids are process-local (the registry hands them out lazily, in
//! first-execution order), so an artifact can only carry *labels*. Replay
//! therefore starts with a **recon campaign**: one unstrategized run of the
//! recorded seed, which makes the target register every site the seed
//! reaches and surfaces the shared-access table. Labels are then resolved
//! back to this process's site ids / granule offset, and the replay
//! campaigns run with the schedule re-imposed.
//!
//! Three fidelity levels:
//!
//! * [`ReplayMode::Strict`] re-enforces the *recorded access order* on the
//!   watched granule with a [`ReplayStrategy`] — byte-for-byte the
//!   interleaving that exposed the bug, with a divergence watchdog.
//! * [`ReplayMode::Steer`] rebuilds the original conditional-wait scheduler
//!   ([`PmraceStrategy`]) with the recorded RNG seed and *pinned* skip
//!   counts (jitter off) — the paper's Fig. 6 mechanism, deterministically
//!   re-parameterized.
//! * [`ReplayMode::Free`] runs the seed alone (for findings that do not
//!   need a schedule).
//!
//! Non-Pmrace schedules (delay / systematic) re-seed their strategies
//! directly; they are deterministic given the recorded parameters.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pmrace_core::campaign::CampaignResult;
use pmrace_core::{run_campaign, CampaignConfig, Ledger, Seed, UniqueBug};
use pmrace_runtime::strategy::InterleaveStrategy;
use pmrace_runtime::{site_by_label, site_label, RtError};
use pmrace_sched::{
    DelayStrategy, PmraceStrategy, ReplayEvent, ReplayStrategy, SyncPlan, SystematicStrategy,
};
use pmrace_telemetry as telemetry;

use crate::artifact::{Repro, ScheduleSpec};

/// How faithfully the recorded schedule is re-imposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Enforce the recorded per-granule access order exactly.
    Strict,
    /// Rebuild the recorded scheduler (seed + pinned skips) and let it run.
    Steer,
    /// Seed only; no interleaving strategy.
    Free,
}

/// Replay knobs.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Fidelity level.
    pub mode: ReplayMode,
    /// Replay campaigns to run before giving up (the checkers sample crash
    /// points, so a faithfully reproduced interleaving may still need a
    /// couple of observations).
    pub attempts: usize,
    /// How long a strictly gated access may wait for its turn before the
    /// replay declares divergence and releases all gates.
    pub watchdog: Duration,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            mode: ReplayMode::Strict,
            attempts: 4,
            watchdog: Duration::from_millis(250),
        }
    }
}

/// What a replay run established.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// `true` when the recorded signature re-fired.
    pub matched: bool,
    /// Campaigns executed (excluding recon).
    pub attempts: usize,
    /// Strict-mode divergence report from the last attempt, if any.
    pub divergence: Option<String>,
    /// Unique bugs the replay surfaced.
    pub bugs: Vec<UniqueBug>,
    /// Candidate-only pairs the replay surfaced.
    pub candidates: Vec<(String, String)>,
    /// Wall-clock time, recon included.
    pub duration: Duration,
}

/// Replay `repro` and report whether its finding re-fired.
///
/// # Errors
///
/// [`RtError::UnknownTarget`] when the artifact's target name does not
/// resolve against the process-global registry (built-ins are registered
/// implicitly; plugin targets must be registered before replay) and
/// [`RtError::Io`] for otherwise unusable artifacts (malformed seed);
/// target-construction failures propagate. A schedule that cannot
/// be re-imposed (e.g. the seed no longer reaches the recorded sites) is
/// *not* an error — it returns `matched: false` with a divergence message,
/// which is what lets delta debugging probe reduced inputs safely.
pub fn replay(repro: &Repro, opts: &ReplayOptions) -> Result<ReplayOutcome, RtError> {
    let start = Instant::now();
    // Artifacts carry a target *name*; resolution goes through the
    // registry so checked-in repros and plugin-target repros replay
    // through one path.
    pmrace_targets::register_builtins();
    pmrace_lockfree::register_lockfree();
    let spec = pmrace_api::resolve_target_or_err(&repro.target)?;
    let seed =
        Seed::parse(&repro.seed_text).map_err(|e| RtError::Io(format!("repro seed: {e}")))?;
    let cfg = CampaignConfig {
        threads: repro.campaign.threads,
        deadline: repro.deadline(),
        capture_images: true,
        max_images: 32,
        eadr: repro.campaign.eadr,
        eviction_interval_us: repro.campaign.eviction_interval_us,
        extra_whitelist: repro.campaign.extra_whitelist.clone(),
    };

    // Recon: register sites, surface the shared-access table. Only needed
    // when the schedule references sites; harmless to skip otherwise.
    let needs_recon =
        matches!(repro.schedule, ScheduleSpec::Pmrace { .. }) && opts.mode != ReplayMode::Free;
    let recon = if needs_recon {
        let _span = telemetry::span(telemetry::Phase::ReplayRecon);
        Some(run_campaign(&spec, &seed, &cfg, None, None)?)
    } else {
        None
    };

    let mut ledger = Ledger::new(spec);
    let mut divergence = None;
    let mut matched = false;
    let mut attempts = 0;
    for attempt in 0..opts.attempts {
        let (strategy, strict) = match build_strategy(repro, opts, recon.as_ref(), attempt) {
            Ok(pair) => pair,
            Err(msg) => {
                // Unresolvable schedule: the finding cannot re-fire.
                telemetry::add(telemetry::Counter::ReplayDivergences, 1);
                return Ok(ReplayOutcome {
                    matched: false,
                    attempts,
                    divergence: Some(msg),
                    bugs: ledger.bugs().into_iter().cloned().collect(),
                    candidates: ledger.candidate_only_pairs(),
                    duration: start.elapsed(),
                });
            }
        };
        let result = {
            let _span = telemetry::span(telemetry::Phase::ReplayAttempt);
            telemetry::add(telemetry::Counter::ReplayAttempts, 1);
            run_campaign(&spec, &seed, &cfg, strategy, None)?
        };
        attempts += 1;
        let _ = ledger.ingest_with_seed(&result, start.elapsed(), Some(&seed));
        if let Some(strict) = strict {
            divergence = strict.divergence();
            if divergence.is_some() {
                telemetry::add(telemetry::Counter::ReplayDivergences, 1);
            }
        }
        let bugs: Vec<UniqueBug> = ledger.bugs().into_iter().cloned().collect();
        let candidates = ledger.candidate_only_pairs();
        if repro
            .signature
            .matches(&bugs, &candidates, ledger.bug_triples())
        {
            matched = true;
            telemetry::add(telemetry::Counter::ReplayMatches, 1);
            break;
        }
    }

    Ok(ReplayOutcome {
        matched,
        attempts,
        divergence,
        bugs: ledger.bugs().into_iter().cloned().collect(),
        candidates: ledger.candidate_only_pairs(),
        duration: start.elapsed(),
    })
}

/// The strategy for one replay attempt, plus the strict-mode handle for
/// divergence reporting. `Err` carries a human-readable resolution failure.
#[allow(clippy::type_complexity)]
fn build_strategy(
    repro: &Repro,
    opts: &ReplayOptions,
    recon: Option<&CampaignResult>,
    attempt: usize,
) -> Result<
    (
        Option<Arc<dyn InterleaveStrategy>>,
        Option<Arc<ReplayStrategy>>,
    ),
    String,
> {
    if opts.mode == ReplayMode::Free {
        return Ok((None, None));
    }
    match &repro.schedule {
        ScheduleSpec::Free => Ok((None, None)),
        ScheduleSpec::Delay {
            max_delay_us,
            rng_seed,
        } => Ok((
            Some(Arc::new(DelayStrategy::new(
                Duration::from_micros(*max_delay_us),
                // Perturb follow-up attempts: repeating a losing delay
                // stream verbatim cannot observe anything new.
                rng_seed.wrapping_add(attempt as u64),
            ))),
            None,
        )),
        ScheduleSpec::Systematic { quantum, start } => Ok((
            Some(Arc::new(SystematicStrategy::new(
                repro.campaign.threads,
                *quantum,
                *start,
            ))),
            None,
        )),
        ScheduleSpec::Pmrace {
            off,
            load_sites,
            store_sites,
            cas_sites,
            rng_seed,
            skips,
            events,
            ..
        } => {
            let recon = recon.ok_or("internal: pmrace replay without recon")?;
            let granule_off = resolve_off(recon, load_sites, store_sites).unwrap_or(*off);
            if opts.mode == ReplayMode::Strict && !events.is_empty() {
                let events: Vec<ReplayEvent> = events
                    .iter()
                    .map(|e| ReplayEvent {
                        is_load: e.is_load,
                        label: e.site.clone(),
                        tid: e.tid,
                    })
                    .collect();
                let strict = Arc::new(ReplayStrategy::new(granule_off, events, opts.watchdog));
                return Ok((Some(strict.clone()), Some(strict)));
            }
            // Steer (and Strict fallback when no events were captured):
            // rebuild the conditional-wait scheduler with pinned skips.
            let plan = SyncPlan {
                off: granule_off,
                load_sites: resolve_sites(load_sites)?,
                store_sites: resolve_sites(store_sites)?,
                // Lenient: a CAS site the recon run happened not to reach
                // only weakens retry stalling; it must not fail the replay.
                cas_sites: cas_sites
                    .iter()
                    .filter_map(|label| site_by_label(label).map(|s| s.id()))
                    .collect(),
            };
            let pinned: HashMap<u32, u32> = skips
                .iter()
                .filter_map(|(label, n)| site_by_label(label).map(|s| (s.id(), *n)))
                .collect();
            Ok((
                Some(Arc::new(PmraceStrategy::with_skips(
                    plan,
                    repro.campaign.threads,
                    pinned,
                    repro.campaign.tuning,
                    *rng_seed,
                ))),
                None,
            ))
        }
    }
}

/// Granule offset whose recon shared-access entry carries the recorded
/// load *and* store labels. Pool allocation is deterministic per seed, so
/// this normally agrees with the recorded offset — but re-resolving makes
/// artifacts robust to allocator changes.
fn resolve_off(recon: &CampaignResult, loads: &[String], stores: &[String]) -> Option<u64> {
    recon
        .shared
        .iter()
        .find(|e| {
            e.load_sites
                .iter()
                .any(|(s, _)| loads.iter().any(|l| site_label(*s) == *l))
                && e.store_sites
                    .iter()
                    .any(|(s, _)| stores.iter().any(|l| site_label(*s) == *l))
        })
        .map(|e| e.off)
}

fn resolve_sites(labels: &[String]) -> Result<HashSet<u32>, String> {
    labels
        .iter()
        .map(|label| {
            site_by_label(label)
                .map(|s| s.id())
                .ok_or_else(|| format!("site '{label}' never executed during recon"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{BugSignature, CampaignSpec, REPRO_VERSION};
    use pmrace_api::Op;
    use pmrace_sched::SyncTuning;

    fn free_repro(target: &str, seed: Seed, sig: BugSignature, deadline_us: u64) -> Repro {
        Repro {
            version: REPRO_VERSION,
            target: target.to_owned(),
            signature: sig,
            description: "test repro".to_owned(),
            seed_text: seed.to_text(),
            campaign: CampaignSpec {
                threads: seed.num_threads(),
                deadline_us,
                eadr: false,
                eviction_interval_us: 0,
                extra_whitelist: Vec::new(),
                tuning: SyncTuning::default(),
            },
            schedule: ScheduleSpec::Free,
        }
    }

    #[test]
    fn hang_repro_replays_to_a_match() {
        // Bug 5: the idempotent update leaks the bucket lock; the next
        // insert on the bucket hangs. Deterministic from the seed alone.
        let seed = Seed::new(vec![vec![
            Op::Insert { key: 1, value: 1 },
            Op::Update { key: 1, value: 1 },
            Op::Insert { key: 1, value: 3 },
        ]]);
        let sig = BugSignature {
            kind: "Hang".to_owned(),
            write_label: String::new(),
            read_label: String::new(),
            effect_label: String::new(),
        };
        let repro = free_repro("P-CLHT", seed, sig, 150_000);
        let out = replay(&repro, &ReplayOptions::default()).unwrap();
        assert!(out.matched, "bugs: {:?}", out.bugs);
        assert_eq!(out.attempts, 1, "a deterministic hang matches first try");
    }

    #[test]
    fn unmatchable_signatures_report_no_match() {
        let seed = Seed::new(vec![vec![Op::Get { key: 1 }]]);
        let sig = BugSignature {
            kind: "Inter".to_owned(),
            write_label: "nonexistent.c:1".to_owned(),
            read_label: String::new(),
            effect_label: String::new(),
        };
        let repro = free_repro("P-CLHT", seed, sig, 100_000);
        let opts = ReplayOptions {
            attempts: 1,
            ..ReplayOptions::default()
        };
        let out = replay(&repro, &opts).unwrap();
        assert!(!out.matched);
    }

    #[test]
    fn unknown_targets_fail_with_a_listing_error() {
        let seed = Seed::new(vec![vec![Op::Get { key: 1 }]]);
        let repro = free_repro(
            "no-such-system",
            seed,
            BugSignature::candidate("w", "r"),
            1000,
        );
        let err = replay(&repro, &ReplayOptions::default()).unwrap_err();
        assert!(
            matches!(err, RtError::UnknownTarget(ref m)
                if m.contains("no-such-system") && m.contains("P-CLHT")),
            "{err}"
        );
    }

    #[test]
    fn unreachable_schedule_sites_surface_as_divergence_not_errors() {
        // A pmrace schedule whose sites the (trivial) seed never executes:
        // replay must finish with a divergence message, not an error —
        // this is exactly what ddmin probes look like.
        let seed = Seed::new(vec![vec![Op::Get { key: 1 }]]);
        let mut repro = free_repro(
            "P-CLHT",
            seed,
            BugSignature {
                kind: "Inter".to_owned(),
                write_label: "clht_lb_res.c:785".to_owned(),
                read_label: String::new(),
                effect_label: String::new(),
            },
            100_000,
        );
        // Labels no target registers (the site registry is process-global,
        // so real labels could be registered by sibling tests).
        repro.schedule = ScheduleSpec::Pmrace {
            off: 64,
            load_sites: vec!["replay-test.nonexistent:1".to_owned()],
            store_sites: vec!["replay-test.nonexistent:2".to_owned()],
            cas_sites: Vec::new(),
            rng_seed: 1,
            skips: Vec::new(),
            events: Vec::new(),
            truncated: false,
        };
        let out = replay(
            &repro,
            &ReplayOptions {
                mode: ReplayMode::Steer,
                attempts: 1,
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        assert!(!out.matched);
        let msg = out.divergence.expect("divergence must be reported");
        assert!(msg.contains("never executed"), "{msg}");
    }
}

//! Delta-debug minimization of repro artifacts (ddmin, Zeller &
//! Hildebrandt's 1-minimality algorithm over the complement lattice).
//!
//! Two lists are minimized, in order:
//!
//! 1. the **seed operations** (flattened `(thread, op)` pairs, so the
//!    per-thread structure survives arbitrary subsets), and
//! 2. the **schedule constraints** (the recorded access-order events of a
//!    pmrace schedule — fewer events means fewer gates at replay time).
//!
//! Every candidate reduction is revalidated by *full replays*,
//! `confirm_runs` of them, and is accepted only if the recorded signature
//! re-fires on all of them — minimization can only ever shrink an
//! artifact, never weaken it. A test budget caps the quadratic worst case.

use pmrace_api::Op;
use pmrace_core::Seed;
use pmrace_runtime::RtError;

use crate::artifact::{Repro, ScheduleSpec};
use crate::replayer::{replay, ReplayOptions};

/// Minimization knobs.
#[derive(Debug, Clone)]
pub struct MinimizeOptions {
    /// Replays a candidate must survive to be accepted (guards against
    /// flaky reductions that only reproduce sometimes).
    pub confirm_runs: usize,
    /// Upper bound on candidate tests across both passes; when exhausted,
    /// the current (still-valid) reduction is returned.
    pub max_tests: usize,
    /// How each candidate is replayed.
    pub replay: ReplayOptions,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        MinimizeOptions {
            confirm_runs: 2,
            max_tests: 64,
            replay: ReplayOptions::default(),
        }
    }
}

/// What minimization achieved.
#[derive(Debug)]
pub struct MinimizeReport {
    /// Seed operations before / after.
    pub ops_before: usize,
    /// Seed operations surviving minimization.
    pub ops_after: usize,
    /// Schedule events before / after.
    pub events_before: usize,
    /// Schedule events surviving minimization.
    pub events_after: usize,
    /// Candidate tests actually run.
    pub tests_run: usize,
    /// The minimized artifact (identical signature, never larger).
    pub repro: Repro,
}

/// Minimize `repro` to a 1-minimal seed and schedule.
///
/// # Errors
///
/// [`RtError::Io`] when the artifact is unusable or does not reproduce at
/// baseline (minimizing a non-reproducing artifact would "succeed" by
/// deleting everything).
pub fn minimize(repro: &Repro, opts: &MinimizeOptions) -> Result<MinimizeReport, RtError> {
    let seed =
        Seed::parse(&repro.seed_text).map_err(|e| RtError::Io(format!("repro seed: {e}")))?;
    let mut tests_run = 0usize;
    let mut reproduces = |candidate: &Repro| -> bool {
        for _ in 0..opts.confirm_runs.max(1) {
            tests_run += 1;
            match replay(candidate, &opts.replay) {
                Ok(out) if out.matched => {}
                _ => return false,
            }
        }
        true
    };

    if !reproduces(repro) {
        return Err(RtError::Io(format!(
            "artifact '{}' does not reproduce at baseline; refusing to minimize",
            repro.signature.key()
        )));
    }

    // Pass 1: seed operations.
    let num_threads = seed.num_threads();
    let items: Vec<(usize, Op)> = seed
        .threads()
        .iter()
        .enumerate()
        .flat_map(|(t, ops)| ops.iter().map(move |op| (t, *op)))
        .collect();
    let ops_before = items.len();
    let mut budget = opts.max_tests;
    let kept_ops = ddmin(
        &items,
        |subset| {
            let mut candidate = repro.clone();
            candidate.seed_text = rebuild_seed(subset, num_threads).to_text();
            reproduces(&candidate)
        },
        &mut budget,
    );
    let mut minimized = repro.clone();
    minimized.seed_text = rebuild_seed(&kept_ops, num_threads).to_text();

    // Pass 2: schedule constraints.
    let events_before = schedule_events(&minimized).map_or(0, Vec::len);
    let mut events_after = events_before;
    if events_before > 0 {
        let events = schedule_events(&minimized).cloned().unwrap_or_default();
        let kept_events = ddmin(
            &events,
            |subset| {
                let mut candidate = minimized.clone();
                set_schedule_events(&mut candidate, subset.to_vec());
                reproduces(&candidate)
            },
            &mut budget,
        );
        events_after = kept_events.len();
        set_schedule_events(&mut minimized, kept_events);
    }

    Ok(MinimizeReport {
        ops_before,
        ops_after: kept_ops.len(),
        events_before,
        events_after,
        tests_run,
        repro: minimized,
    })
}

/// Re-thread flattened `(thread, op)` pairs, preserving thread count and
/// per-thread order (threads whose ops were all removed become empty).
fn rebuild_seed(items: &[(usize, Op)], num_threads: usize) -> Seed {
    let mut threads = vec![Vec::new(); num_threads.max(1)];
    for (t, op) in items {
        threads[*t % num_threads.max(1)].push(*op);
    }
    Seed::new(threads)
}

fn schedule_events(repro: &Repro) -> Option<&Vec<crate::artifact::EventSpec>> {
    match &repro.schedule {
        ScheduleSpec::Pmrace { events, .. } => Some(events),
        _ => None,
    }
}

fn set_schedule_events(repro: &mut Repro, new_events: Vec<crate::artifact::EventSpec>) {
    if let ScheduleSpec::Pmrace { events, .. } = &mut repro.schedule {
        *events = new_events;
    }
}

/// Generic ddmin: the smallest subset of `items` (w.r.t. single-chunk
/// removal) for which `still_fails` holds. `still_fails` must hold for
/// `items` itself. Each probe decrements `budget`; at zero, the current
/// (valid) reduction is returned immediately.
pub fn ddmin<T: Clone>(
    items: &[T],
    mut still_fails: impl FnMut(&[T]) -> bool,
    budget: &mut usize,
) -> Vec<T> {
    let mut current = items.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 {
        let n_eff = n.min(current.len());
        let chunk = current.len().div_ceil(n_eff);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            if *budget == 0 {
                return current;
            }
            let end = (start + chunk).min(current.len());
            let mut complement = Vec::with_capacity(current.len() - (end - start));
            complement.extend_from_slice(&current[..start]);
            complement.extend_from_slice(&current[end..]);
            *budget -= 1;
            if still_fails(&complement) {
                current = complement;
                n = n_eff.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n_eff >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    // Finish 1-minimality: a single survivor may itself be removable.
    if current.len() == 1 && *budget > 0 {
        *budget -= 1;
        if still_fails(&[]) {
            current.clear();
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_isolates_the_failure_inducing_subset() {
        // Classic example: the failure needs {1, 7, 8}.
        let items: Vec<u32> = (1..=8).collect();
        let mut budget = 1000;
        let kept = ddmin(
            &items,
            |subset| [1, 7, 8].iter().all(|x| subset.contains(x)),
            &mut budget,
        );
        assert_eq!(kept, vec![1, 7, 8]);
    }

    #[test]
    fn ddmin_reduces_to_empty_when_nothing_is_needed() {
        let items: Vec<u32> = (1..=5).collect();
        let mut budget = 1000;
        let kept = ddmin(&items, |_| true, &mut budget);
        assert!(kept.is_empty());
    }

    #[test]
    fn ddmin_respects_the_test_budget() {
        let items: Vec<u32> = (1..=64).collect();
        let mut budget = 3;
        let kept = ddmin(&items, |s| s.contains(&64), &mut budget);
        assert_eq!(budget, 0);
        // Whatever came back must still satisfy the predicate.
        assert!(kept.contains(&64));
    }

    #[test]
    fn ddmin_keeps_order_of_surviving_items() {
        let items: Vec<u32> = vec![9, 3, 7, 1, 5];
        let mut budget = 1000;
        let kept = ddmin(
            &items,
            |subset| [3, 5].iter().all(|x| subset.contains(x)),
            &mut budget,
        );
        assert_eq!(kept, vec![3, 5]);
    }

    #[test]
    fn rebuild_seed_preserves_thread_assignment() {
        use pmrace_api::Op;
        let items = vec![
            (0, Op::Insert { key: 1, value: 1 }),
            (2, Op::Get { key: 1 }),
        ];
        let seed = rebuild_seed(&items, 3);
        assert_eq!(seed.num_threads(), 3);
        assert_eq!(seed.threads()[0].len(), 1);
        assert!(seed.threads()[1].is_empty());
        assert_eq!(seed.threads()[2].len(), 1);
    }

    #[test]
    fn minimizing_a_hang_repro_shrinks_the_seed() {
        use crate::artifact::{BugSignature, CampaignSpec, REPRO_VERSION};
        use pmrace_core::Seed;
        use pmrace_sched::SyncTuning;

        // Bug 5 needs exactly Insert(k), Update(k, same value), Insert(k);
        // the surrounding noise ops must all be removed.
        let seed = Seed::new(vec![vec![
            Op::Insert { key: 9, value: 9 },
            Op::Get { key: 9 },
            Op::Insert { key: 1, value: 1 },
            Op::Update { key: 1, value: 1 },
            Op::Get { key: 9 },
            Op::Insert { key: 1, value: 3 },
            Op::Delete { key: 9 },
        ]]);
        let repro = Repro {
            version: REPRO_VERSION,
            target: "P-CLHT".to_owned(),
            signature: BugSignature {
                kind: "Hang".to_owned(),
                write_label: String::new(),
                read_label: String::new(),
                effect_label: String::new(),
            },
            description: "hang".to_owned(),
            seed_text: seed.to_text(),
            campaign: CampaignSpec {
                threads: 1,
                deadline_us: 150_000,
                eadr: false,
                eviction_interval_us: 0,
                extra_whitelist: Vec::new(),
                tuning: SyncTuning::default(),
            },
            schedule: ScheduleSpec::Free,
        };
        let opts = MinimizeOptions {
            confirm_runs: 1,
            max_tests: 48,
            replay: ReplayOptions {
                attempts: 1,
                ..ReplayOptions::default()
            },
        };
        let report = minimize(&repro, &opts).unwrap();
        assert!(
            report.ops_after < report.ops_before,
            "noise ops must be removed ({} -> {})",
            report.ops_before,
            report.ops_after
        );
        assert!(report.ops_after >= 3, "the hang needs its 3-op core");
        // The minimized artifact still reproduces.
        let out = replay(&report.repro, &opts.replay).unwrap();
        assert!(out.matched);
    }
}

//! On-disk store of repro artifacts, keyed by bug signature.
//!
//! One artifact per signature: the file name is the sanitized signature key
//! plus a short hash of the exact key (two signatures that sanitize to the
//! same slug still get distinct files). This is what makes the store a
//! *regression corpus*: re-finding a known bug does not add files, and
//! minimization replaces an artifact in place.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};

use pmrace_runtime::RtError;

use crate::artifact::{BugSignature, Repro};

/// A directory of `*.json` repro artifacts.
#[derive(Debug, Clone)]
pub struct ReproStore {
    dir: PathBuf,
}

impl ReproStore {
    /// Open (creating if needed) a repro store directory.
    ///
    /// # Errors
    ///
    /// [`RtError::Io`] with the filesystem cause.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RtError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| RtError::Io(format!("repro store {}: {e}", dir.display())))?;
        Ok(ReproStore { dir })
    }

    /// The store's directory.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The file an artifact with this signature lives at.
    #[must_use]
    pub fn path_for(&self, sig: &BugSignature) -> PathBuf {
        let key = sig.key();
        let slug: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect::<String>()
            .split('-')
            .filter(|p| !p.is_empty())
            .collect::<Vec<_>>()
            .join("-");
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let slug = &slug[..slug.len().min(64)];
        self.dir
            .join(format!("{slug}-{:08x}.json", h.finish() as u32))
    }

    /// `true` when an artifact with this signature is already stored.
    #[must_use]
    pub fn contains(&self, sig: &BugSignature) -> bool {
        self.path_for(sig).exists()
    }

    /// Write (or replace) the artifact for its signature; returns the path.
    ///
    /// # Errors
    ///
    /// [`RtError::Io`] with the filesystem cause.
    pub fn save(&self, repro: &Repro) -> Result<PathBuf, RtError> {
        let path = self.path_for(&repro.signature);
        std::fs::write(&path, repro.to_json())
            .map_err(|e| RtError::Io(format!("repro save {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Load one artifact file.
    ///
    /// # Errors
    ///
    /// [`RtError::Io`] for filesystem failures *and* parse/version errors
    /// (both mean "this artifact is unusable", with the cause attached).
    pub fn load(path: &Path) -> Result<Repro, RtError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| RtError::Io(format!("repro load {}: {e}", path.display())))?;
        Repro::from_json(&text)
            .map_err(|e| RtError::Io(format!("repro parse {}: {e}", path.display())))
    }

    /// Load every `*.json` artifact in the store, sorted by file name.
    /// Unlike the seed corpus, unparsable artifacts are *errors* — a
    /// regression corpus must not silently shrink.
    ///
    /// # Errors
    ///
    /// [`RtError::Io`] with the first failing path and cause.
    pub fn load_all(&self) -> Result<Vec<(PathBuf, Repro)>, RtError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)
            .map_err(|e| RtError::Io(format!("repro list {}: {e}", self.dir.display())))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .map(|p| Self::load(&p).map(|r| (p, r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{CampaignSpec, ScheduleSpec, REPRO_VERSION};
    use pmrace_sched::SyncTuning;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pmrace-repros-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn repro(kind: &str, write: &str) -> Repro {
        Repro {
            version: REPRO_VERSION,
            target: "P-CLHT".to_owned(),
            signature: BugSignature {
                kind: kind.to_owned(),
                write_label: write.to_owned(),
                read_label: String::new(),
                effect_label: String::new(),
            },
            description: "d".to_owned(),
            seed_text: "t0: get 1\n".to_owned(),
            campaign: CampaignSpec {
                threads: 1,
                deadline_us: 1000,
                eadr: false,
                eviction_interval_us: 0,
                extra_whitelist: Vec::new(),
                tuning: SyncTuning::default(),
            },
            schedule: ScheduleSpec::Free,
        }
    }

    #[test]
    fn save_is_keyed_by_signature_and_replaces() {
        let dir = tmpdir("keyed");
        let store = ReproStore::open(&dir).unwrap();
        let a = repro("Inter", "file.c:1");
        assert!(!store.contains(&a.signature));
        let p1 = store.save(&a).unwrap();
        assert!(store.contains(&a.signature));
        // Same signature, different content: replaced in place.
        let mut smaller = a.clone();
        smaller.seed_text = "t0: get 2\n".to_owned();
        let p2 = store.save(&smaller).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(store.load_all().unwrap().len(), 1);
        assert_eq!(store.load_all().unwrap()[0].1, smaller);
        // A different signature gets its own file.
        store.save(&repro("Intra", "file.c:2")).unwrap();
        assert_eq!(store.load_all().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_all_fails_loudly_on_corrupt_artifacts() {
        let dir = tmpdir("corrupt");
        let store = ReproStore::open(&dir).unwrap();
        store.save(&repro("Inter", "x")).unwrap();
        std::fs::write(dir.join("broken.json"), "not json").unwrap();
        let err = store.load_all().unwrap_err();
        assert!(
            matches!(err, RtError::Io(ref m) if m.contains("broken.json")),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filenames_are_readable_slugs() {
        let dir = tmpdir("slug");
        let store = ReproStore::open(&dir).unwrap();
        let path = store.path_for(&BugSignature {
            kind: "Inter".to_owned(),
            write_label: "clht_lb_res.c:785".to_owned(),
            read_label: String::new(),
            effect_label: String::new(),
        });
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("inter-clht-lb-res-c-785-"), "{name}");
        assert!(name.ends_with(".json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Deterministic record/replay for PMRace findings.
//!
//! Fuzzing finds a concurrency bug once; this crate makes it fire *on
//! demand*. The pieces, in pipeline order:
//!
//! 1. **Record** — [`Recorder`] plugs into the fuzzer's
//!    [`RecordSink`](pmrace_core::RecordSink) hook and serializes the
//!    nondeterminism frontier of every campaign that surfaced a new
//!    finding: the chosen sync plan, the strategy RNG seed, the realized
//!    skip counts, and the released per-granule access order (all
//!    label-based — site ids are process-local). The result is a
//!    versioned JSON [`Repro`] artifact in a [`ReproStore`].
//! 2. **Replay** — [`replay`] re-runs an artifact: a recon campaign
//!    resolves labels back to this process's sites, then the recorded
//!    schedule is re-imposed ([`ReplayMode::Strict`] enforces the exact
//!    access order with a divergence watchdog; [`ReplayMode::Steer`]
//!    rebuilds the original scheduler deterministically) and the replay
//!    asserts the recorded [`BugSignature`] fires again.
//! 3. **Minimize** — [`minimize()`] delta-debugs ([`ddmin`]) the seed
//!    operations and the schedule constraints down to 1-minimal, fully
//!    revalidating every accepted reduction.
//! 4. **Regress** — [`build_corpus`] records replay-validated artifacts
//!    for the paper's 14 Table 2 bugs; [`replay_corpus`] is the CI gate
//!    that replays the checked-in corpus and reports any artifact whose
//!    bug no longer fires.
//!
//! The JSON layer is hand-rolled ([`json`]) — the build environment is
//! offline and the workspace vendors no serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod corpus;
pub mod json;
pub mod minimize;
pub mod recorder;
pub mod replayer;
pub mod store;

pub use artifact::{BugSignature, CampaignSpec, EventSpec, Repro, ScheduleSpec, REPRO_VERSION};
pub use corpus::{build_corpus, build_recipe, recipes, replay_corpus, BuiltRepro, Recipe};
pub use minimize::{ddmin, minimize, MinimizeOptions, MinimizeReport};
pub use recorder::Recorder;
pub use replayer::{replay, ReplayMode, ReplayOptions, ReplayOutcome};
pub use store::ReproStore;

//! Minimal JSON reader/writer for repro artifacts.
//!
//! The build environment is fully offline, so there is no serde; artifacts
//! are small, flat documents and this hand-rolled module covers exactly
//! what they need. Two deliberate choices:
//!
//! - objects keep insertion order (artifacts diff cleanly in review);
//! - numbers are `f64`, so 64-bit values that may exceed 2^53 (RNG seeds)
//!   are serialized as hex *strings* by the artifact layer, never as
//!   numbers.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as `u64`, when it is a non-negative integer (exact up
    /// to 2^53; larger values must travel as hex strings).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with 2-space indentation and a trailing newline (the on-disk
    /// artifact format: stable and reviewable).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    // One escape-rule implementation for the whole workspace: the shared
    // helper `pmrace-api` re-exports as `pmrace_api::json`.
    pmrace_api::json::escape_into(out, s);
}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    pmrace_api::json::unescape(bytes, pos)
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at byte {pos}", pos = *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_order() {
        let v = Value::Obj(vec![
            ("version".to_owned(), Value::Num(1.0)),
            (
                "name".to_owned(),
                Value::Str("a \"quoted\"\nline".to_owned()),
            ),
            (
                "items".to_owned(),
                Value::Arr(vec![Value::Bool(true), Value::Null, Value::Num(42.0)]),
            ),
            ("empty".to_owned(), Value::Obj(vec![])),
        ]);
        let text = v.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // Key order survives the roundtrip (stable diffs).
        let Value::Obj(members) = &back else {
            unreachable!()
        };
        assert_eq!(members[0].0, "version");
        assert_eq!(members[3].0, "empty");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("truthy").is_err());
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let v = parse(r#"{"n": 12, "s": "x", "b": false, "a": [1, 2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(12));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Value::Str("tabs\tand\u{1}ctrl — naïve ✓".to_owned());
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }
}

//! Auto-recording: turn the fuzzer's new findings into stored artifacts.
//!
//! The fuzzer deliberately knows nothing about repro artifacts — it only
//! offers a [`RecordSink`] callback fired with the campaign's
//! [`StepOutcome`] and the [`IngestDelta`] of findings that were *new*
//! after deduplication. [`Recorder`] is the other half: it builds one
//! [`Repro`] per new unique bug (and per new candidate pair) from the
//! step's schedule capture and writes it to a [`ReproStore`], first-wins
//! per signature so re-finding a known bug never churns the corpus.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmrace_core::explore::StepOutcome;
use pmrace_core::{IngestDelta, RecordSink};
use pmrace_telemetry as telemetry;

use crate::artifact::{BugSignature, Repro};
use crate::store::ReproStore;

/// Collects repro artifacts for every new finding a fuzzing run reports.
#[derive(Debug)]
pub struct Recorder {
    target: String,
    store: ReproStore,
    recorded: AtomicUsize,
    errors: Mutex<Vec<String>>,
}

impl Recorder {
    /// A recorder writing artifacts for `target` findings into `store`.
    #[must_use]
    pub fn new(target: &str, store: ReproStore) -> Arc<Self> {
        Arc::new(Recorder {
            target: target.to_owned(),
            store,
            recorded: AtomicUsize::new(0),
            errors: Mutex::new(Vec::new()),
        })
    }

    /// The sink to plug into [`FuzzConfig::record`](pmrace_core::FuzzConfig).
    #[must_use]
    pub fn sink(self: &Arc<Self>) -> RecordSink {
        let this = Arc::clone(self);
        RecordSink::new(move |out, delta| this.on_step(out, delta))
    }

    /// Artifacts written so far.
    #[must_use]
    pub fn recorded(&self) -> usize {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Store-write failures encountered so far (recording is best-effort:
    /// a full disk must not abort the fuzzing run that found the bug).
    #[must_use]
    pub fn errors(&self) -> Vec<String> {
        self.errors.lock().clone()
    }

    /// The store artifacts are written to.
    #[must_use]
    pub fn store(&self) -> &ReproStore {
        &self.store
    }

    fn on_step(&self, out: &StepOutcome, delta: &IngestDelta) {
        let Some(capture) = &out.capture else {
            return;
        };
        let _span = telemetry::span(telemetry::Phase::RecordCapture);
        let seed_text = out.seed.to_text();
        for bug in &delta.new_bugs {
            self.record(Repro::from_capture(
                &self.target,
                BugSignature::from_bug(bug),
                &bug.description,
                &seed_text,
                capture,
            ));
        }
        for (write, read) in &delta.new_candidates {
            self.record(Repro::from_capture(
                &self.target,
                BugSignature::candidate(write, read),
                "inconsistency candidate: read of non-persisted data",
                &seed_text,
                capture,
            ));
        }
    }

    fn record(&self, repro: Repro) {
        if self.store.contains(&repro.signature) {
            return;
        }
        match self.store.save(&repro) {
            Ok(_) => {
                self.recorded.fetch_add(1, Ordering::Relaxed);
                telemetry::add(telemetry::Counter::RecordCaptures, 1);
            }
            Err(e) => self.errors.lock().push(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::time::Duration;

    use pmrace_core::{FuzzConfig, Fuzzer, StrategyKind};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pmrace-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn fuzzing_with_a_recorder_fills_the_store() {
        let dir = tmpdir("fuzz");
        let recorder = Recorder::new("P-CLHT", ReproStore::open(&dir).unwrap());
        let mut cfg = FuzzConfig::new("P-CLHT");
        cfg.workers = 1;
        cfg.max_campaigns = 30;
        cfg.wall_budget = Duration::from_secs(25);
        cfg.strategy = StrategyKind::Pmrace;
        cfg.rng_seed = 7;
        cfg.record = Some(recorder.sink());
        let report = Fuzzer::new(cfg).unwrap().run().unwrap();
        assert!(
            !report.bugs.is_empty() || !report.candidate_only.is_empty(),
            "the P-CLHT seed workloads reliably surface findings"
        );
        assert!(recorder.recorded() > 0, "new findings must be recorded");
        assert!(recorder.errors().is_empty(), "{:?}", recorder.errors());
        let stored = recorder.store().load_all().unwrap();
        assert_eq!(stored.len(), recorder.recorded());
        // Every artifact corresponds to a reported finding and replays the
        // exact seed text of the campaign that exposed it.
        for (_, repro) in &stored {
            assert_eq!(repro.target, "P-CLHT");
            assert!(!repro.seed_text.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

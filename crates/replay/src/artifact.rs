//! The versioned on-disk repro artifact.
//!
//! A [`Repro`] is everything needed to re-trigger one finding
//! deterministically: the target, the seed (text format), the campaign's
//! execution parameters, the captured schedule (strategy RNG seeds,
//! realized skips, released access order — all label-based), and the
//! signature of the bug the replay must re-produce.
//!
//! Artifacts are hand-rolled JSON (see [`crate::json`]) with an explicit
//! `version` field; loading rejects unknown versions instead of guessing,
//! so future format changes fail loudly on old binaries. 64-bit RNG seeds
//! are serialized as hex strings — JSON numbers are `f64` and would
//! silently corrupt seeds above 2^53.

use std::time::Duration;

use pmrace_core::schedule::{ScheduleCapture, StrategyCapture};
use pmrace_core::{BugKind, UniqueBug};
use pmrace_sched::SyncTuning;

use crate::json::{parse, Value};

/// Current artifact format version.
pub const REPRO_VERSION: u64 = 1;

/// What finding a replay must re-trigger to count as a match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BugSignature {
    /// Bug kind (`Inter`/`Intra`/`Sync`/`Hang`/`Perf`) or `Candidate` for
    /// candidate-only findings that never grew a durable side effect.
    pub kind: String,
    /// The dedup anchor: write label for inconsistencies, sync-variable
    /// name for sync bugs, empty for hangs.
    pub write_label: String,
    /// Racy read label; discriminates candidates and full triples.
    pub read_label: String,
    /// Durable-side-effect label. When set on an `Inter`/`Intra`
    /// signature, replay must re-trigger the exact `(write, read, effect)`
    /// triple — this is what keeps Table 2's bug 9 and bug 10 distinct
    /// even though the ledger dedups unique bugs by write site alone.
    pub effect_label: String,
}

impl BugSignature {
    /// Signature of a deduplicated unique bug.
    #[must_use]
    pub fn from_bug(bug: &UniqueBug) -> Self {
        BugSignature {
            kind: bug.kind.to_string(),
            write_label: bug.write_label.clone(),
            read_label: bug.read_label.clone(),
            effect_label: bug.effect_label.clone(),
        }
    }

    /// Signature of a validated `(write, read, effect)` inconsistency
    /// triple (`kind` is `Inter` or `Intra`).
    #[must_use]
    pub fn triple(kind: &str, write: &str, read: &str, effect: &str) -> Self {
        BugSignature {
            kind: kind.to_owned(),
            write_label: write.to_owned(),
            read_label: read.to_owned(),
            effect_label: effect.to_owned(),
        }
    }

    /// Signature of a candidate-only `(write, read)` pair.
    #[must_use]
    pub fn candidate(write_label: &str, read_label: &str) -> Self {
        BugSignature {
            kind: "Candidate".to_owned(),
            write_label: write_label.to_owned(),
            read_label: read_label.to_owned(),
            effect_label: String::new(),
        }
    }

    /// `true` when this signature is matched by the given ledger state.
    ///
    /// * Candidates match the `(write, read)` pair (or a bug it escalated
    ///   to).
    /// * Inconsistency signatures with an effect label match the exact
    ///   validated `(write, read, effect)` triple.
    /// * Everything else matches on `kind:write_label`, the ledger's own
    ///   dedup key (hangs on kind alone).
    #[must_use]
    pub fn matches(
        &self,
        bugs: &[UniqueBug],
        candidates: &[(String, String)],
        triples: &[(String, String, String)],
    ) -> bool {
        if self.kind == "Candidate" {
            // A candidate that *escalated* to an inconsistency bug on this
            // run still re-triggered the racy pair — count both.
            return candidates
                .iter()
                .any(|(w, r)| *w == self.write_label && *r == self.read_label)
                || bugs
                    .iter()
                    .any(|b| b.write_label == self.write_label && b.read_label == self.read_label);
        }
        // Only inconsistency findings live in the validated-triple list;
        // Sync/Hang bugs carry an effect label too but match by kind+var.
        if (self.kind == "Inter" || self.kind == "Intra") && !self.effect_label.is_empty() {
            return triples.iter().any(|(w, r, e)| {
                *w == self.write_label && *r == self.read_label && *e == self.effect_label
            });
        }
        bugs.iter().any(|b| {
            b.kind.to_string() == self.kind
                && (b.write_label == self.write_label || matches!(b.kind, BugKind::Hang))
        })
    }

    /// Stable human-readable key (also the repro store's directory name
    /// seed).
    #[must_use]
    pub fn key(&self) -> String {
        match self.kind.as_str() {
            "Hang" => "Hang".to_owned(),
            "Candidate" => format!("Candidate:{}:{}", self.write_label, self.read_label),
            kind @ ("Inter" | "Intra") if !self.effect_label.is_empty() => format!(
                "{kind}:{}:{}:{}",
                self.write_label, self.read_label, self.effect_label
            ),
            kind => format!("{kind}:{}", self.write_label),
        }
    }
}

/// One recorded access in the serialized schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSpec {
    /// `true` for a load.
    pub is_load: bool,
    /// Site label.
    pub site: String,
    /// Driver thread.
    pub tid: u32,
}

/// The serialized schedule, mirroring
/// [`StrategyCapture`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleSpec {
    /// No strategy: the bug reproduces from the seed alone.
    Free,
    /// Random delay injection.
    Delay {
        /// Maximum injected delay (µs).
        max_delay_us: u64,
        /// RNG seed the delay stream was drawn from.
        rng_seed: u64,
    },
    /// Round-robin serialization.
    Systematic {
        /// Accesses per turn.
        quantum: u32,
        /// Starting thread of the rotation.
        start: u32,
    },
    /// The Fig. 6 conditional-wait scheduler, pinned.
    Pmrace {
        /// Watched granule byte offset (advisory; replay re-resolves the
        /// granule from the recon campaign's shared accesses when needed).
        off: u64,
        /// Gated load-site labels.
        load_sites: Vec<String>,
        /// Signalling store-site labels.
        store_sites: Vec<String>,
        /// CAS-site labels whose failed attempts are stalled as retry
        /// decision points. Absent in pre-lock-free artifacts; parsing
        /// defaults to empty so the original corpus keeps loading.
        cas_sites: Vec<String>,
        /// Strategy RNG seed.
        rng_seed: u64,
        /// Realized initial skips per load-site label.
        skips: Vec<(String, u32)>,
        /// Released access order on the watched granule.
        events: Vec<EventSpec>,
        /// Whether the recorded log overflowed.
        truncated: bool,
    },
}

/// Campaign execution parameters of the recorded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Driver threads.
    pub threads: usize,
    /// Campaign deadline in microseconds.
    pub deadline_us: u64,
    /// eADR failure model.
    pub eadr: bool,
    /// Cache-eviction agitator interval (µs, 0 = off).
    pub eviction_interval_us: u64,
    /// Extra whitelist rules.
    pub extra_whitelist: Vec<String>,
    /// Scheduler timing knobs.
    pub tuning: SyncTuning,
}

/// A complete, self-contained repro artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Artifact format version ([`REPRO_VERSION`]).
    pub version: u64,
    /// Target system name.
    pub target: String,
    /// The finding this artifact re-triggers.
    pub signature: BugSignature,
    /// Human-readable bug description from the original detection.
    pub description: String,
    /// The seed, in [`Seed::to_text`](pmrace_core::Seed::to_text) format.
    pub seed_text: String,
    /// Campaign execution parameters.
    pub campaign: CampaignSpec,
    /// The captured schedule.
    pub schedule: ScheduleSpec,
}

impl Repro {
    /// Build an artifact from a capture plus the finding it exposed.
    #[must_use]
    pub fn from_capture(
        target: &str,
        signature: BugSignature,
        description: &str,
        seed_text: &str,
        capture: &ScheduleCapture,
    ) -> Self {
        let schedule = match &capture.strategy {
            StrategyCapture::None => ScheduleSpec::Free,
            StrategyCapture::Delay {
                max_delay_us,
                rng_seed,
            } => ScheduleSpec::Delay {
                max_delay_us: *max_delay_us,
                rng_seed: *rng_seed,
            },
            StrategyCapture::Systematic { quantum, start } => ScheduleSpec::Systematic {
                quantum: *quantum,
                start: *start,
            },
            StrategyCapture::Pmrace {
                plan,
                rng_seed,
                skips,
                events,
                truncated,
            } => ScheduleSpec::Pmrace {
                off: plan.off,
                load_sites: plan.load_sites.clone(),
                store_sites: plan.store_sites.clone(),
                cas_sites: plan.cas_sites.clone(),
                rng_seed: *rng_seed,
                skips: skips.clone(),
                events: events
                    .iter()
                    .map(|e| EventSpec {
                        is_load: e.is_load,
                        site: e.site.clone(),
                        tid: e.tid,
                    })
                    .collect(),
                truncated: *truncated,
            },
        };
        Repro {
            version: REPRO_VERSION,
            target: target.to_owned(),
            signature,
            description: description.to_owned(),
            seed_text: seed_text.to_owned(),
            campaign: CampaignSpec {
                threads: capture.threads,
                deadline_us: u64::try_from(capture.deadline.as_micros()).unwrap_or(u64::MAX),
                eadr: capture.eadr,
                eviction_interval_us: capture.eviction_interval_us,
                extra_whitelist: capture.extra_whitelist.clone(),
                tuning: capture.tuning,
            },
            schedule,
        }
    }

    /// The recorded campaign deadline.
    #[must_use]
    pub fn deadline(&self) -> Duration {
        Duration::from_micros(self.campaign.deadline_us)
    }

    /// Serialize to the on-disk JSON format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let tuning = &self.campaign.tuning;
        let schedule = match &self.schedule {
            ScheduleSpec::Free => Value::Obj(vec![kv_str("kind", "free")]),
            ScheduleSpec::Delay {
                max_delay_us,
                rng_seed,
            } => Value::Obj(vec![
                kv_str("kind", "delay"),
                kv_num("max_delay_us", *max_delay_us),
                kv_hex("rng_seed", *rng_seed),
            ]),
            ScheduleSpec::Systematic { quantum, start } => Value::Obj(vec![
                kv_str("kind", "systematic"),
                kv_num("quantum", u64::from(*quantum)),
                kv_num("start", u64::from(*start)),
            ]),
            ScheduleSpec::Pmrace {
                off,
                load_sites,
                store_sites,
                cas_sites,
                rng_seed,
                skips,
                events,
                truncated,
            } => Value::Obj(vec![
                kv_str("kind", "pmrace"),
                kv_num("off", *off),
                str_arr("load_sites", load_sites),
                str_arr("store_sites", store_sites),
                str_arr("cas_sites", cas_sites),
                kv_hex("rng_seed", *rng_seed),
                (
                    "skips".to_owned(),
                    Value::Arr(
                        skips
                            .iter()
                            .map(|(site, n)| {
                                Value::Obj(vec![
                                    kv_str("site", site),
                                    kv_num("count", u64::from(*n)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "events".to_owned(),
                    Value::Arr(
                        events
                            .iter()
                            .map(|e| {
                                Value::Obj(vec![
                                    ("load".to_owned(), Value::Bool(e.is_load)),
                                    kv_str("site", &e.site),
                                    kv_num("tid", u64::from(e.tid)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("truncated".to_owned(), Value::Bool(*truncated)),
            ]),
        };
        Value::Obj(vec![
            kv_num("version", self.version),
            kv_str("target", &self.target),
            (
                "signature".to_owned(),
                Value::Obj(vec![
                    kv_str("kind", &self.signature.kind),
                    kv_str("write", &self.signature.write_label),
                    kv_str("read", &self.signature.read_label),
                    kv_str("effect", &self.signature.effect_label),
                ]),
            ),
            kv_str("description", &self.description),
            kv_str("seed", &self.seed_text),
            (
                "campaign".to_owned(),
                Value::Obj(vec![
                    kv_num("threads", self.campaign.threads as u64),
                    kv_num("deadline_us", self.campaign.deadline_us),
                    ("eadr".to_owned(), Value::Bool(self.campaign.eadr)),
                    kv_num("eviction_interval_us", self.campaign.eviction_interval_us),
                    str_arr("extra_whitelist", &self.campaign.extra_whitelist),
                    (
                        "tuning".to_owned(),
                        Value::Obj(vec![
                            kv_num(
                                "reader_poll_us",
                                u64::try_from(tuning.reader_poll.as_micros()).unwrap_or(u64::MAX),
                            ),
                            kv_num(
                                "writer_wait_us",
                                u64::try_from(tuning.writer_wait.as_micros()).unwrap_or(u64::MAX),
                            ),
                            kv_num("all_block_iters", u64::from(tuning.all_block_iters)),
                            kv_num("disable_iters", u64::from(tuning.disable_iters)),
                            kv_num("skip_jitter", u64::from(tuning.skip_jitter)),
                        ]),
                    ),
                ]),
            ),
            ("schedule".to_owned(), schedule),
        ])
        .pretty()
    }

    /// Parse an artifact, rejecting unknown format versions.
    ///
    /// # Errors
    ///
    /// Returns a message for syntax errors, missing fields, and version
    /// mismatches (forward compatibility fails loudly, never silently).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = parse(text)?;
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("missing 'version'")?;
        if version != REPRO_VERSION {
            return Err(format!(
                "unsupported repro version {version} (this build reads version {REPRO_VERSION})"
            ));
        }
        let target = req_str(&doc, "target")?;
        let sig = doc.get("signature").ok_or("missing 'signature'")?;
        let signature = BugSignature {
            kind: req_str(sig, "kind")?,
            write_label: req_str(sig, "write")?,
            read_label: req_str(sig, "read")?,
            effect_label: req_str(sig, "effect")?,
        };
        let description = req_str(&doc, "description")?;
        let seed_text = req_str(&doc, "seed")?;

        let camp = doc.get("campaign").ok_or("missing 'campaign'")?;
        let tun = camp.get("tuning").ok_or("missing 'campaign.tuning'")?;
        let tuning = SyncTuning {
            reader_poll: Duration::from_micros(req_num(tun, "reader_poll_us")?),
            writer_wait: Duration::from_micros(req_num(tun, "writer_wait_us")?),
            all_block_iters: req_u32(tun, "all_block_iters")?,
            disable_iters: req_u32(tun, "disable_iters")?,
            skip_jitter: req_u32(tun, "skip_jitter")?,
        };
        let campaign = CampaignSpec {
            threads: usize::try_from(req_num(camp, "threads")?)
                .map_err(|_| "bad 'campaign.threads'")?,
            deadline_us: req_num(camp, "deadline_us")?,
            eadr: camp
                .get("eadr")
                .and_then(Value::as_bool)
                .ok_or("missing 'campaign.eadr'")?,
            eviction_interval_us: req_num(camp, "eviction_interval_us")?,
            extra_whitelist: req_str_arr(camp, "extra_whitelist")?,
            tuning,
        };

        let sched = doc.get("schedule").ok_or("missing 'schedule'")?;
        let schedule = match req_str(sched, "kind")?.as_str() {
            "free" => ScheduleSpec::Free,
            "delay" => ScheduleSpec::Delay {
                max_delay_us: req_num(sched, "max_delay_us")?,
                rng_seed: req_hex(sched, "rng_seed")?,
            },
            "systematic" => ScheduleSpec::Systematic {
                quantum: req_u32(sched, "quantum")?,
                start: req_u32(sched, "start")?,
            },
            "pmrace" => {
                let skips = sched
                    .get("skips")
                    .and_then(Value::as_arr)
                    .ok_or("missing 'schedule.skips'")?
                    .iter()
                    .map(|s| Ok((req_str(s, "site")?, req_u32(s, "count")?)))
                    .collect::<Result<Vec<_>, String>>()?;
                let events = sched
                    .get("events")
                    .and_then(Value::as_arr)
                    .ok_or("missing 'schedule.events'")?
                    .iter()
                    .map(|e| {
                        Ok(EventSpec {
                            is_load: e
                                .get("load")
                                .and_then(Value::as_bool)
                                .ok_or("missing event 'load'")?,
                            site: req_str(e, "site")?,
                            tid: req_u32(e, "tid")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                ScheduleSpec::Pmrace {
                    off: req_num(sched, "off")?,
                    load_sites: req_str_arr(sched, "load_sites")?,
                    store_sites: req_str_arr(sched, "store_sites")?,
                    // Optional: artifacts recorded before CAS-retry-aware
                    // scheduling existed carry no cas_sites field.
                    cas_sites: if sched.get("cas_sites").is_some() {
                        req_str_arr(sched, "cas_sites")?
                    } else {
                        Vec::new()
                    },
                    rng_seed: req_hex(sched, "rng_seed")?,
                    skips,
                    events,
                    truncated: sched
                        .get("truncated")
                        .and_then(Value::as_bool)
                        .ok_or("missing 'schedule.truncated'")?,
                }
            }
            other => return Err(format!("unknown schedule kind '{other}'")),
        };

        Ok(Repro {
            version,
            target,
            signature,
            description,
            seed_text,
            campaign,
            schedule,
        })
    }
}

fn kv_str(key: &str, value: &str) -> (String, Value) {
    (key.to_owned(), Value::Str(value.to_owned()))
}

fn kv_num(key: &str, value: u64) -> (String, Value) {
    (key.to_owned(), Value::Num(value as f64))
}

fn kv_hex(key: &str, value: u64) -> (String, Value) {
    (key.to_owned(), Value::Str(format!("{value:#018x}")))
}

fn str_arr(key: &str, items: &[String]) -> (String, Value) {
    (
        key.to_owned(),
        Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect()),
    )
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing '{key}'"))
}

fn req_num(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing '{key}'"))
}

fn req_u32(v: &Value, key: &str) -> Result<u32, String> {
    u32::try_from(req_num(v, key)?).map_err(|_| format!("'{key}' out of range"))
}

fn req_hex(v: &Value, key: &str) -> Result<u64, String> {
    let s = req_str(v, key)?;
    let digits = s.strip_prefix("0x").unwrap_or(&s);
    u64::from_str_radix(digits, 16).map_err(|_| format!("'{key}' is not a hex u64"))
}

fn req_str_arr(v: &Value, key: &str) -> Result<Vec<String>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing '{key}'"))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("'{key}' has a non-string element"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repro {
        Repro {
            version: REPRO_VERSION,
            target: "P-CLHT".to_owned(),
            signature: BugSignature {
                kind: "Inter".to_owned(),
                write_label: "clht_lb_res.c:785".to_owned(),
                read_label: "clht_lb_res.c:417".to_owned(),
                effect_label: String::new(),
            },
            description: "read non-persisted data".to_owned(),
            seed_text: "t0: insert 1=2; get 1\nt1: update 1=3\n".to_owned(),
            campaign: CampaignSpec {
                threads: 2,
                deadline_us: 400_000,
                eadr: false,
                eviction_interval_us: 0,
                extra_whitelist: vec!["rule".to_owned()],
                tuning: SyncTuning::default(),
            },
            schedule: ScheduleSpec::Pmrace {
                off: 640,
                load_sites: vec!["clht_lb_res.c:417".to_owned()],
                store_sites: vec!["clht_lb_res.c:785".to_owned()],
                cas_sites: vec!["clht_lb_res.c:700".to_owned()],
                // Above 2^53: would corrupt as a JSON number.
                rng_seed: 0xDEAD_BEEF_CAFE_F00D,
                skips: vec![("clht_lb_res.c:417".to_owned(), 3)],
                events: vec![
                    EventSpec {
                        is_load: false,
                        site: "clht_lb_res.c:785".to_owned(),
                        tid: 0,
                    },
                    EventSpec {
                        is_load: true,
                        site: "clht_lb_res.c:417".to_owned(),
                        tid: 1,
                    },
                ],
                truncated: false,
            },
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let repro = sample();
        let text = repro.to_json();
        let back = Repro::from_json(&text).unwrap();
        assert_eq!(back, repro);
    }

    #[test]
    fn artifacts_without_cas_sites_still_parse() {
        // The original corpus predates CAS-retry-aware scheduling; its
        // pmrace schedules have no cas_sites field and must load as empty.
        let rendered = {
            let mut s = sample();
            if let ScheduleSpec::Pmrace { cas_sites, .. } = &mut s.schedule {
                cas_sites.clear();
            }
            s.to_json()
        };
        let mut lines: Vec<&str> = rendered.lines().collect();
        let i = lines
            .iter()
            .position(|l| l.contains("cas_sites"))
            .expect("pmrace schedules serialize cas_sites");
        lines.remove(i); // empty arrays render inline: `"cas_sites": [],`
        let text = lines.join("\n");
        assert!(!text.contains("cas_sites"), "field must be gone: {text}");
        let back = Repro::from_json(&text).unwrap();
        match back.schedule {
            ScheduleSpec::Pmrace { cas_sites, .. } => assert!(cas_sites.is_empty()),
            other => panic!("expected pmrace schedule, got {other:?}"),
        }
    }

    #[test]
    fn unknown_versions_are_rejected_loudly() {
        let text = sample().to_json().replace(
            &format!("\"version\": {REPRO_VERSION}"),
            &format!("\"version\": {}", REPRO_VERSION + 1),
        );
        let err = Repro::from_json(&text).unwrap_err();
        assert!(err.contains("unsupported repro version"), "{err}");
        assert!(err.contains(&format!("{}", REPRO_VERSION + 1)), "{err}");
    }

    #[test]
    fn missing_fields_are_named_in_the_error() {
        let err = Repro::from_json(r#"{"version": 1, "target": "x"}"#).unwrap_err();
        assert!(err.contains("signature"), "{err}");
    }

    #[test]
    fn free_and_delay_schedules_roundtrip() {
        for schedule in [
            ScheduleSpec::Free,
            ScheduleSpec::Delay {
                max_delay_us: 50,
                rng_seed: u64::MAX,
            },
            ScheduleSpec::Systematic {
                quantum: 4,
                start: 3,
            },
        ] {
            let repro = Repro {
                schedule,
                ..sample()
            };
            assert_eq!(Repro::from_json(&repro.to_json()).unwrap(), repro);
        }
    }

    #[test]
    fn signature_matching_follows_ledger_keys() {
        let sig = sample().signature;
        let bug = UniqueBug {
            kind: BugKind::Inter,
            target: "P-CLHT",
            write_label: "clht_lb_res.c:785".to_owned(),
            read_label: "other".to_owned(),
            effect_label: String::new(),
            description: String::new(),
            verdict: pmrace_core::Verdict::Bug,
            found_after: Duration::ZERO,
            seed_text: None,
            trace_text: String::new(),
        };
        // Unique bugs group by kind + write label; the read may differ.
        assert!(sig.matches(std::slice::from_ref(&bug), &[], &[]));
        let cand_sig = BugSignature::candidate("w", "r");
        assert!(!cand_sig.matches(&[bug], &[], &[]));
        assert!(cand_sig.matches(&[], &[("w".to_owned(), "r".to_owned())], &[]));
        assert_eq!(cand_sig.key(), "Candidate:w:r");
        assert_eq!(sig.key(), "Inter:clht_lb_res.c:785");
    }

    #[test]
    fn triple_signatures_discriminate_by_effect_site() {
        // Table 2's bugs 9 and 10 share write and read sites and differ
        // only in the durable effect; their signatures must stay distinct
        // and match only their own validated triple.
        let bug9 = BugSignature::triple("Inter", "w.c:4292", "m.c:2805", "m.c:4292");
        let bug10 = BugSignature::triple("Inter", "w.c:4292", "m.c:2805", "m.c:4293");
        assert_ne!(bug9.key(), bug10.key());
        let triples = vec![(
            "w.c:4292".to_owned(),
            "m.c:2805".to_owned(),
            "m.c:4293".to_owned(),
        )];
        assert!(!bug9.matches(&[], &[], &triples));
        assert!(bug10.matches(&[], &[], &triples));
    }
}

//! The public target API: everything a workload needs to plug into the
//! PMRace fuzzer, and nothing of the fuzzer itself.
//!
//! The paper evaluates PMRace on five externally-built PM systems
//! (Table 1), and breadth of workloads is the detector's real product —
//! each new class of PM application surfaces bug patterns the previous
//! ones did not. This crate is the boundary that makes workloads
//! pluggable: `pmrace-core` (the fuzzer), `pmrace-replay` (artifacts) and
//! `pmrace-targets` (the built-in systems) all depend on *it*, never on
//! each other's concrete types, so out-of-tree code can add a target
//! without touching the engine.
//!
//! The surface is small:
//!
//! - [`Target`], [`TargetSpec`], [`TargetCtor`] — the workload contract:
//!   an operation executor ([`Op`] → [`OpResult`]) plus constructors for
//!   the fresh-pool (`init`) and recovery (`recover`) paths. Recovery is
//!   load-bearing: post-failure validation (§4.4) re-runs it against
//!   crash images, and its stores decide bug vs. false positive.
//! - [`SeedHints`] — the seed-grammar knobs ([`OpWeights`], key ranges)
//!   the structured mutator (§4.5) reads per target.
//! - [`register_target`] / [`resolve_target`] / [`all_targets`] — the
//!   thread-safe process-global registry the fuzzer, the replayer and the
//!   CLI resolve target names through.
//! - [`json`] — the shared JSON string-literal escape/unescape helper the
//!   workspace's hand-rolled writers and parsers agree on.
//!
//! The built-in systems register themselves via
//! `pmrace_targets::register_builtins()`; a plugin target just calls
//! [`register_target`] with its own [`TargetSpec`] and is immediately
//! fuzzable, validatable and replayable by name.
//!
//! # Example: a complete out-of-tree target
//!
//! The smallest target that exercises the whole contract — a single
//! persistent cell every key maps to. The tail of the example is exactly
//! what the campaign driver does with a resolved spec each campaign:
//! build the pool the spec asks for, open a session, construct the
//! target, hand per-thread views to drivers. (For a target with planted
//! bugs and a recovery path, see `examples/mpsc_queue/` in the repo
//! root.)
//!
//! ```
//! use std::sync::Arc;
//!
//! use pmrace_api::{ensure_registered, resolve_target, Op, OpResult, Target, TargetSpec};
//! use pmrace_pmem::{Pool, PoolOpts, ThreadId};
//! use pmrace_runtime::{site, PmView, RtError, Session, SessionConfig};
//!
//! struct OneCell;
//!
//! impl Target for OneCell {
//!     fn name(&self) -> &'static str {
//!         "one-cell"
//!     }
//!
//!     fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
//!         const CELL: u64 = 64;
//!         match *op {
//!             Op::Insert { value, .. } | Op::Update { value, .. } => {
//!                 view.store_u64(CELL, value, site!("one_cell.set"))?;
//!                 view.persist(CELL, 8, site!("one_cell.set.flush"))?;
//!                 Ok(OpResult::Done)
//!             }
//!             Op::Get { .. } => Ok(match view.load_u64(CELL, site!("one_cell.get"))?.value() {
//!                 0 => OpResult::Missing,
//!                 v => OpResult::Found(v),
//!             }),
//!             _ => Ok(OpResult::Missing),
//!         }
//!     }
//! }
//!
//! fn build(_session: &Arc<Session>) -> Result<Arc<dyn Target>, RtError> {
//!     Ok(Arc::new(OneCell))
//! }
//!
//! // `TargetSpec` is all `fn` pointers, so specs can live in statics.
//! static SPEC: TargetSpec = TargetSpec::new("one-cell", build, build, PoolOpts::small);
//!
//! ensure_registered(SPEC).expect("name is free");
//! let spec = resolve_target("one-cell").expect("registered above");
//!
//! // What the campaign driver does with a resolved spec:
//! let pool = Arc::new(Pool::new((spec.pool)()));
//! let session = Session::new(pool, SessionConfig::default());
//! let target = (spec.init)(&session)?;
//! let view = session.view(ThreadId(0));
//! target.exec(&view, &Op::Insert { key: 7, value: 41 })?;
//! assert_eq!(target.exec(&view, &Op::Get { key: 7 })?, OpResult::Found(41));
//! # Ok::<(), RtError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;

pub use registry::{
    all_targets, ensure_registered, register_target, resolve_target, resolve_target_or_err,
    DuplicateTarget,
};

/// Shared JSON string-literal escaping and unescaping.
///
/// The workspace is fully offline (no serde); every hand-rolled JSON
/// writer/parser (repro artifacts in `pmrace-replay`, telemetry snapshots
/// in `pmrace-telemetry`) uses these two functions for string literals so
/// the escape rules exist exactly once.
pub mod json {
    pub use pmrace_telemetry::jsonstr::{escape_into, unescape};
}

use std::sync::Arc;

use pmrace_pmem::PoolOpts;
use pmrace_runtime::{PmView, RtError, Session};

/// One request a driver thread issues against a target (the operation
/// alphabet of the fuzzer's structured seeds, §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Insert `key -> value` (memcached `set`/`add`).
    Insert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Update an existing key (memcached `replace`).
    Update {
        /// Key.
        key: u64,
        /// New value.
        value: u64,
    },
    /// Remove a key.
    Delete {
        /// Key.
        key: u64,
    },
    /// Look a key up.
    Get {
        /// Key.
        key: u64,
    },
    /// Add to a numeric value (memcached `incr`; other targets treat it as
    /// read-modify-write update).
    Incr {
        /// Key.
        key: u64,
        /// Amount.
        by: u64,
    },
    /// Subtract from a numeric value (memcached `decr`).
    Decr {
        /// Key.
        key: u64,
        /// Amount.
        by: u64,
    },
}

impl Op {
    /// The key this operation addresses.
    #[must_use]
    pub fn key(&self) -> u64 {
        match *self {
            Op::Insert { key, .. }
            | Op::Update { key, .. }
            | Op::Delete { key }
            | Op::Get { key }
            | Op::Incr { key, .. }
            | Op::Decr { key, .. } => key,
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Op::Insert { key, value } => write!(f, "insert {key}={value}"),
            Op::Update { key, value } => write!(f, "update {key}={value}"),
            Op::Delete { key } => write!(f, "delete {key}"),
            Op::Get { key } => write!(f, "get {key}"),
            Op::Incr { key, by } => write!(f, "incr {key}+{by}"),
            Op::Decr { key, by } => write!(f, "decr {key}-{by}"),
        }
    }
}

/// Outcome of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// Mutation applied.
    Done,
    /// Lookup hit with the stored value.
    Found(u64),
    /// Key absent (lookup miss, failed update/delete).
    Missing,
}

/// A concurrent PM system under test.
pub trait Target: Send + Sync {
    /// System name (for built-ins this matches Table 1).
    fn name(&self) -> &'static str;

    /// Execute one operation on behalf of the worker thread owning `view`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors; [`RtError::Timeout`] means the campaign
    /// deadline fired (possible hang bug).
    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError>;

    /// Read-only lookup (used by differential tests).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    fn get(&self, view: &PmView, key: u64) -> Result<Option<u64>, RtError> {
        match self.exec(view, &Op::Get { key })? {
            OpResult::Found(v) => Ok(Some(v)),
            _ => Ok(None),
        }
    }
}

/// Constructor building a target instance over a session.
pub type TargetCtor = fn(&Arc<Session>) -> Result<Arc<dyn Target>, RtError>;

/// Relative frequencies of the six operation kinds in generated seeds.
///
/// The mutator draws an operation with probability `weight / total`; the
/// weights need not sum to any particular value. [`OpWeights::DEFAULT`]
/// reproduces the distribution the built-in hash-table/tree targets are
/// tuned for (insert-heavy, updates rare).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpWeights {
    /// Weight of [`Op::Insert`].
    pub insert: u32,
    /// Weight of [`Op::Get`].
    pub get: u32,
    /// Weight of [`Op::Update`].
    pub update: u32,
    /// Weight of [`Op::Delete`].
    pub delete: u32,
    /// Weight of [`Op::Incr`].
    pub incr: u32,
    /// Weight of [`Op::Decr`].
    pub decr: u32,
}

impl OpWeights {
    /// The built-in distribution (percent, summing to 100): insert 48,
    /// get 20, update 5, delete 9, incr 10, decr 8. Updates are rare
    /// because in P-CLHT a successful update leaks its bucket lock
    /// (seeded Bug 5) and hangs the rest of the campaign.
    pub const DEFAULT: OpWeights = OpWeights {
        insert: 48,
        get: 20,
        update: 5,
        delete: 9,
        incr: 10,
        decr: 8,
    };

    /// Sum of all six weights.
    #[must_use]
    pub const fn total(&self) -> u32 {
        self.insert + self.get + self.update + self.delete + self.incr + self.decr
    }
}

impl Default for OpWeights {
    fn default() -> Self {
        OpWeights::DEFAULT
    }
}

/// Seed-grammar hints: how the structured mutator (§4.5) should shape
/// operation sequences for a target.
///
/// Defaults reproduce the grammar the paper's five systems are fuzzed
/// with bit-for-bit (same RNG draw sequence), so built-in targets and the
/// determinism/replay corpora are unaffected; a plugin target can skew
/// the grammar toward its own hot paths (e.g. a queue wants inserts and
/// deletes, not point lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedHints {
    /// Upper bound of the key universe (keys are drawn from
    /// `1..=key_range`). Small on purpose: similar keys collide on shared
    /// PM addresses and raise PM alias-pair coverage.
    pub key_range: u64,
    /// Size of the hot-key prefix (`1..=hot_keys`) that half of all key
    /// draws land on (Zipf-ish similar-key prioritization).
    pub hot_keys: u64,
    /// Exclusive upper bound for generated values (`1..max_value`).
    pub max_value: u64,
    /// Exclusive upper bound for incr/decr step sizes (`1..max_step`).
    pub max_step: u64,
    /// Relative operation frequencies.
    pub weights: OpWeights,
}

impl SeedHints {
    /// The grammar every built-in target uses.
    pub const DEFAULT: SeedHints = SeedHints {
        key_range: 24,
        hot_keys: 4,
        max_value: 32,
        max_step: 16,
        weights: OpWeights::DEFAULT,
    };

    /// Clamp degenerate values (zero ranges or weights) to the smallest
    /// sane grammar so a sloppy plugin spec cannot panic the mutator.
    ///
    /// ```
    /// use pmrace_api::SeedHints;
    ///
    /// // A queue-ish grammar: few keys, all of them hot.
    /// let hints = SeedHints {
    ///     key_range: 8,
    ///     hot_keys: 8,
    ///     ..SeedHints::DEFAULT
    /// };
    /// assert_eq!(hints.weights.total(), 100); // weights kept from DEFAULT
    ///
    /// // Degenerate specs are clamped, never panicked on:
    /// let fixed = SeedHints {
    ///     key_range: 0,
    ///     hot_keys: 99,
    ///     ..SeedHints::DEFAULT
    /// }
    /// .normalized();
    /// assert_eq!((fixed.key_range, fixed.hot_keys), (1, 1));
    /// ```
    #[must_use]
    pub fn normalized(mut self) -> SeedHints {
        self.key_range = self.key_range.max(1);
        self.hot_keys = self.hot_keys.clamp(1, self.key_range);
        self.max_value = self.max_value.max(2);
        self.max_step = self.max_step.max(2);
        if self.weights.total() == 0 {
            self.weights = OpWeights::DEFAULT;
        }
        self
    }
}

impl Default for SeedHints {
    fn default() -> Self {
        SeedHints::DEFAULT
    }
}

/// Constructor table entry for a target system: the unit of registration.
///
/// Everything is a plain `fn` pointer so specs can live in `static`s and
/// be [`Copy`]; build one with [`TargetSpec::new`] and customize with the
/// `with_*` builders (all `const`, usable in statics).
#[derive(Clone, Copy)]
pub struct TargetSpec {
    /// System name (what [`resolve_target`] and repro artifacts key on).
    pub name: &'static str,
    /// Format a fresh pool and build an empty instance (registers sync-var
    /// annotations on the session).
    pub init: TargetCtor,
    /// Reopen an existing pool running the system's recovery code. This is
    /// what post-failure validation executes against crash images: stores
    /// it performs count as "recovery repaired it" (false positive), PM
    /// state it leaves untouched stays inconsistent (bug).
    pub recover: TargetCtor,
    /// Pool options this target wants.
    pub pool: fn() -> PoolOpts,
    /// Seed-grammar hints for the structured mutator.
    pub hints: SeedHints,
    /// Optional checker-arming hook, invoked by the campaign driver right
    /// after the target is constructed and before driver threads start —
    /// the place to [`Session::add_checker`] target-specific PM checkers
    /// (§4.3) without forking the engine.
    pub arm: Option<fn(&Arc<Session>)>,
}

impl TargetSpec {
    /// A spec with the default seed grammar and no extra checkers.
    #[must_use]
    pub const fn new(
        name: &'static str,
        init: TargetCtor,
        recover: TargetCtor,
        pool: fn() -> PoolOpts,
    ) -> Self {
        TargetSpec {
            name,
            init,
            recover,
            pool,
            hints: SeedHints::DEFAULT,
            arm: None,
        }
    }

    /// Replace the seed-grammar hints.
    #[must_use]
    pub const fn with_hints(mut self, hints: SeedHints) -> Self {
        self.hints = hints;
        self
    }

    /// Install a checker-arming hook.
    #[must_use]
    pub const fn with_arm(mut self, arm: fn(&Arc<Session>)) -> Self {
        self.arm = Some(arm);
        self
    }
}

impl std::fmt::Debug for TargetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetSpec")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Insert { key: 3, value: 4 }.key(), 3);
        assert_eq!(Op::Decr { key: 9, by: 1 }.key(), 9);
        assert_eq!(Op::Get { key: 1 }.to_string(), "get 1");
    }

    #[test]
    fn default_hints_match_the_builtin_grammar() {
        let h = SeedHints::default();
        assert_eq!(h, SeedHints::DEFAULT);
        assert_eq!(h.key_range, 24);
        assert_eq!(h.hot_keys, 4);
        assert_eq!(h.weights.total(), 100);
    }

    #[test]
    fn normalized_clamps_degenerate_hints() {
        let h = SeedHints {
            key_range: 0,
            hot_keys: 99,
            max_value: 0,
            max_step: 1,
            weights: OpWeights {
                insert: 0,
                get: 0,
                update: 0,
                delete: 0,
                incr: 0,
                decr: 0,
            },
        }
        .normalized();
        assert_eq!(h.key_range, 1);
        assert_eq!(h.hot_keys, 1);
        assert_eq!(h.max_value, 2);
        assert_eq!(h.max_step, 2);
        assert_eq!(h.weights, OpWeights::DEFAULT);
    }

    #[test]
    fn spec_builders_are_const_friendly() {
        static SPEC: TargetSpec = TargetSpec::new(
            "unit-test-builder",
            |_| Err(RtError::Halted),
            |_| Err(RtError::Halted),
            PoolOpts::small,
        )
        .with_hints(SeedHints {
            key_range: 8,
            ..SeedHints::DEFAULT
        });
        assert_eq!(SPEC.name, "unit-test-builder");
        assert_eq!(SPEC.hints.key_range, 8);
        assert!(SPEC.arm.is_none());
        assert_eq!(
            format!("{SPEC:?}"),
            "TargetSpec { name: \"unit-test-builder\" }"
        );
    }
}

//! The process-global target registry.
//!
//! One flat, append-only table mapping target names to [`TargetSpec`]s.
//! Registration order is preserved and is the iteration order of
//! [`all_targets`] — the replay corpus and Table 2 iteration depend on a
//! deterministic order, so the registry never sorts or rehashes.
//!
//! Rust has no life-before-main, so nothing registers itself merely by
//! being linked in: the built-in systems are registered by
//! `pmrace_targets::register_builtins()` (idempotent), and plugin targets
//! call [`register_target`] from their own setup code.

use std::sync::OnceLock;

use parking_lot::RwLock;
use pmrace_runtime::RtError;

use crate::TargetSpec;

static REGISTRY: OnceLock<RwLock<Vec<TargetSpec>>> = OnceLock::new();

fn registry() -> &'static RwLock<Vec<TargetSpec>> {
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

/// Error returned by [`register_target`] when the name is already taken.
///
/// Target names are the key repro artifacts, the validation cache and the
/// CLI resolve by, so two specs must never share one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateTarget {
    /// The contested name.
    pub name: String,
}

impl std::fmt::Display for DuplicateTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "target {:?} is already registered; target names must be unique",
            self.name
        )
    }
}

impl std::error::Error for DuplicateTarget {}

/// Register a target, making it resolvable by name for fuzzing,
/// validation and replay. Thread-safe; order of registration is the order
/// [`all_targets`] reports.
///
/// # Errors
///
/// Rejects a spec whose name is already registered (re-registering the
/// same workload is almost always a harness bug; make registration
/// idempotent on the caller's side, e.g. with [`std::sync::Once`]).
///
/// ```
/// use pmrace_api::{register_target, resolve_target, ensure_registered, TargetSpec};
/// use pmrace_pmem::PoolOpts;
/// use pmrace_runtime::RtError;
///
/// static SPEC: TargetSpec = TargetSpec::new(
///     "registry-doc-example",
///     |_| Err(RtError::Halted),
///     |_| Err(RtError::Halted),
///     PoolOpts::small,
/// );
///
/// register_target(SPEC).unwrap();
/// assert!(resolve_target("registry-doc-example").is_some());
///
/// // Names are unique: a second plain registration is rejected...
/// assert!(register_target(SPEC).is_err());
/// // ...but re-registering the *same* spec through the idempotent form
/// // succeeds silently (safe for racing fleet workers).
/// assert!(ensure_registered(SPEC).is_ok());
/// ```
pub fn register_target(spec: TargetSpec) -> Result<(), DuplicateTarget> {
    let mut reg = registry().write();
    if reg.iter().any(|s| s.name == spec.name) {
        return Err(DuplicateTarget {
            name: spec.name.to_owned(),
        });
    }
    reg.push(spec);
    Ok(())
}

/// Register `spec` if its name is free, succeed silently if *the same
/// spec* is already present, and reject a *different* spec under the same
/// name.
///
/// This is the concurrent-first-call-safe form of idempotent registration:
/// fleet workers all race their suite's `register_*()` on startup, and a
/// caller-side `Once` only serializes callers of *that* function — two
/// suites (or a test binary and a library) registering the same spec
/// through different entry points still collide. Sameness is judged by the
/// spec's function pointers and hints under the registry's write lock, so
/// exactly one copy lands no matter how many threads race.
///
/// # Errors
///
/// Rejects a spec whose name is registered with different contents —
/// that is a real conflict, not a redundant call.
pub fn ensure_registered(spec: TargetSpec) -> Result<(), DuplicateTarget> {
    let mut reg = registry().write();
    if let Some(existing) = reg.iter().find(|s| s.name == spec.name) {
        if same_spec(existing, &spec) {
            return Ok(());
        }
        return Err(DuplicateTarget {
            name: spec.name.to_owned(),
        });
    }
    reg.push(spec);
    Ok(())
}

/// Two specs are the same registration if every field matches; functions
/// compare by address, which is exactly right here — "the same spec"
/// means the same `static` handed to `ensure_registered` twice.
fn same_spec(a: &TargetSpec, b: &TargetSpec) -> bool {
    a.name == b.name
        && std::ptr::fn_addr_eq(a.init, b.init)
        && std::ptr::fn_addr_eq(a.recover, b.recover)
        && std::ptr::fn_addr_eq(a.pool, b.pool)
        && a.hints == b.hints
        && match (a.arm, b.arm) {
            (None, None) => true,
            (Some(x), Some(y)) => std::ptr::fn_addr_eq(x, y),
            _ => false,
        }
}

/// Look a registered target up by name.
#[must_use]
pub fn resolve_target(name: &str) -> Option<TargetSpec> {
    registry().read().iter().find(|s| s.name == name).copied()
}

/// Every registered target, in registration order (deterministic: the
/// registry is append-only and never reorders).
#[must_use]
pub fn all_targets() -> Vec<TargetSpec> {
    registry().read().clone()
}

/// Look a target up by name, or fail with [`RtError::UnknownTarget`]
/// whose message lists the names that *are* registered.
///
/// # Errors
///
/// [`RtError::UnknownTarget`] when `name` is not registered.
pub fn resolve_target_or_err(name: &str) -> Result<TargetSpec, RtError> {
    resolve_target(name).ok_or_else(|| {
        let names: Vec<&str> = registry().read().iter().map(|s| s.name).collect();
        let known = if names.is_empty() {
            "(none — register targets first, e.g. pmrace_targets::register_builtins())".to_owned()
        } else {
            names.join(", ")
        };
        RtError::UnknownTarget(format!("{name:?}; registered targets: {known}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmrace_pmem::PoolOpts;

    fn dummy(name: &'static str) -> TargetSpec {
        TargetSpec::new(
            name,
            |_| Err(RtError::Halted),
            |_| Err(RtError::Halted),
            PoolOpts::small,
        )
    }

    // The registry is process-global and shared by every test in this
    // binary, so tests use unique name prefixes and assert on their own
    // slice of the table, never on its absolute contents.

    #[test]
    fn registration_resolves_and_preserves_order() {
        for n in ["reg-ord-a", "reg-ord-b", "reg-ord-c"] {
            register_target(dummy(n)).unwrap();
        }
        assert_eq!(resolve_target("reg-ord-b").unwrap().name, "reg-ord-b");
        let mine: Vec<&str> = all_targets()
            .iter()
            .map(|s| s.name)
            .filter(|n| n.starts_with("reg-ord-"))
            .collect();
        assert_eq!(mine, vec!["reg-ord-a", "reg-ord-b", "reg-ord-c"]);
        // Deterministic: repeated reads see the identical order.
        let again: Vec<&str> = all_targets()
            .iter()
            .map(|s| s.name)
            .filter(|n| n.starts_with("reg-ord-"))
            .collect();
        assert_eq!(mine, again);
    }

    #[test]
    fn duplicate_names_are_rejected_with_a_clear_error() {
        register_target(dummy("reg-dup")).unwrap();
        let err = register_target(dummy("reg-dup")).unwrap_err();
        assert_eq!(err.name, "reg-dup");
        let msg = err.to_string();
        assert!(
            msg.contains("\"reg-dup\"") && msg.contains("already registered"),
            "{msg}"
        );
        // The first registration survives.
        assert!(resolve_target("reg-dup").is_some());
    }

    #[test]
    fn concurrent_registration_is_safe() {
        const NAMES: [&str; 8] = [
            "reg-conc-0",
            "reg-conc-1",
            "reg-conc-2",
            "reg-conc-3",
            "reg-conc-4",
            "reg-conc-5",
            "reg-conc-6",
            "reg-conc-7",
        ];
        std::thread::scope(|s| {
            for name in NAMES {
                s.spawn(move || {
                    // Every thread races one unique and one contested
                    // registration; exactly one thread wins the latter.
                    register_target(dummy(name)).unwrap();
                    let _ = register_target(dummy("reg-conc-shared"));
                });
            }
        });
        for name in NAMES {
            assert!(resolve_target(name).is_some(), "{name} lost");
        }
        let shared = all_targets()
            .iter()
            .filter(|s| s.name == "reg-conc-shared")
            .count();
        assert_eq!(shared, 1, "contested name registered exactly once");
    }

    #[test]
    fn racing_idempotent_registration_of_one_spec_lands_exactly_once() {
        // The fleet-startup shape: many workers race ensure_registered
        // with the *same* spec on first call. Every call must succeed and
        // exactly one copy must land — no Once on the caller's side.
        static SPEC_NAME: &str = "reg-race-idem";
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        ensure_registered(dummy(SPEC_NAME))
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), Ok(()), "idempotent call must win");
            }
        });
        let copies = all_targets().iter().filter(|s| s.name == SPEC_NAME).count();
        assert_eq!(copies, 1, "the contested spec registered exactly once");
    }

    #[test]
    fn ensure_registered_rejects_a_conflicting_spec_under_the_same_name() {
        ensure_registered(dummy("reg-race-conflict")).unwrap();
        // Same name, different init fn: a genuine conflict, not a retry.
        let conflicting = TargetSpec::new(
            "reg-race-conflict",
            |_| Err(RtError::Timeout),
            |_| Err(RtError::Halted),
            PoolOpts::small,
        );
        let err = ensure_registered(conflicting).unwrap_err();
        assert_eq!(err.name, "reg-race-conflict");
        // And the redundant re-registration of the original still succeeds.
        ensure_registered(dummy("reg-race-conflict")).unwrap();
    }

    #[test]
    fn unknown_names_resolve_to_a_listing_error() {
        register_target(dummy("reg-known")).unwrap();
        let err = resolve_target_or_err("reg-definitely-not-there").unwrap_err();
        let RtError::UnknownTarget(msg) = &err else {
            panic!("wrong variant: {err:?}");
        };
        assert!(msg.contains("\"reg-definitely-not-there\""), "{msg}");
        assert!(msg.contains("registered targets:"), "{msg}");
        assert!(msg.contains("reg-known"), "{msg}");
        assert_eq!(
            resolve_target_or_err("reg-known").unwrap().name,
            "reg-known"
        );
    }
}

//! A persistent Michael–Scott queue with two planted CAS-publication bugs.
//!
//! The classic two-CAS enqueue: link the new node onto `tail.next`, then
//! swing `TAIL`. A producer that finds `tail.next` already taken *helps*
//! by swinging `TAIL` over the half-linked node and durably logging the
//! repair. Two PM inter-thread inconsistencies are planted:
//!
//! 1. **Unflushed link CAS** (`msq.c:62` / `msq.c:59` / `msq.c:72`) — the
//!    linking CAS that publishes the new node on `tail.next` is never
//!    persisted. A helping producer racy-reads the half-linked pointer
//!    and durably logs the repair it performed. A crash drops the link:
//!    the recovered queue never held the node the repair log references.
//! 2. **Unflushed payload behind the link** (`msq.c:52` / `msq.c:90` /
//!    `msq.c:95`) — the node payload is a plain store with no persist. A
//!    consumer reads the payload and durably logs the dequeued value; a
//!    crash loses the payload while the durable log claims it was
//!    consumed.
//!
//! Recovery walks the persisted links from `HEAD`, truncates at the first
//! lost link, repairs `TAIL` to the last reachable node, and rewinds the
//! arena cursor — but never heals the durable log cells, so post-failure
//! validation classifies both findings as genuine.

use std::sync::Arc;

use pmrace_api::{Op, OpResult, OpWeights, SeedHints, Target, TargetSpec};
use pmrace_pmem::{PmAllocator, PoolOpts, ThreadId};
use pmrace_runtime::{site, PmView, RtError, Session};

// Root layout: head/tail pointers, two durable log cells, the node-arena
// cursor, then the node arena. Slot 0 is the initial dummy node. Every
// field sits on its own cache line: `clwb` write-back covers whole
// 64-byte lines, so co-locating the deliberately-unflushed cells (links,
// payloads) with the head/tail/cursor cells the code *does* persist
// would drag them to durability by false sharing.
const Q_HEAD: u64 = 0;
const Q_TAIL: u64 = 64;
/// Durable log: the last dequeued payload (bug 2's effect cell).
const DEQ_LOG: u64 = 128;
/// Durable log: the half-linked pointer a helping producer swung `TAIL`
/// over (bug 1's effect cell).
const REPAIR_LOG: u64 = 192;
const NODE_CURSOR: u64 = 256;
const NODES: u64 = 320;
/// Node layout: next pointer and payload on separate cache lines.
const NODE_NEXT: u64 = 0;
const NODE_VAL: u64 = 64;
const NODE_SIZE: u64 = 128;
/// Arena capacity in nodes (slot 0 is the dummy).
const CAP: u64 = 256;
const ROOT_SIZE: usize = (NODES + CAP * NODE_SIZE) as usize;

/// Bounded optimistic retries before an op gives up.
const MAX_TRIES: u32 = 64;

/// Enqueue/dequeue-heavy grammar; the helping path (bug 1) needs at
/// least two concurrent producers, so campaigns should run ≥3 threads.
const HINTS: SeedHints = SeedHints {
    key_range: 8,
    hot_keys: 3,
    max_value: 16,
    max_step: 4,
    weights: OpWeights {
        insert: 44,
        get: 8,
        update: 0,
        delete: 36,
        incr: 6,
        decr: 6,
    },
};

/// The queue instance bound to a session's pool.
#[derive(Debug)]
pub struct MsQueue {
    root: u64,
}

/// Registration entry for the suite (`register_lockfree`).
pub static SPEC: TargetSpec = TargetSpec::new(
    "ms-queue",
    |session| Ok(Arc::new(MsQueue::init(session)?) as Arc<dyn Target>),
    |session| Ok(Arc::new(MsQueue::recover(session)?) as Arc<dyn Target>),
    PoolOpts::small,
)
.with_hints(HINTS);

impl MsQueue {
    /// Format the session's pool and build an empty queue (a persisted
    /// dummy node that both `HEAD` and `TAIL` reference).
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn init(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.alloc(ROOT_SIZE, view.tid())?;
        alloc.set_root(root, view.tid())?;
        let q = MsQueue { root };
        let dummy = q.node_off(0);
        view.ntstore_u64(dummy + NODE_NEXT, 0u64, site!("msq.init.dummy_next"))?;
        view.ntstore_u64(dummy + NODE_VAL, 0u64, site!("msq.init.dummy_val"))?;
        view.ntstore_u64(root + Q_HEAD, dummy, site!("msq.init.head"))?;
        view.ntstore_u64(root + Q_TAIL, dummy, site!("msq.init.tail"))?;
        view.ntstore_u64(root + DEQ_LOG, 0u64, site!("msq.init.deq_log"))?;
        view.ntstore_u64(root + REPAIR_LOG, 0u64, site!("msq.init.repair_log"))?;
        view.ntstore_u64(root + NODE_CURSOR, 1u64, site!("msq.init.cursor"))?;
        Ok(q)
    }

    /// Reopen an existing pool: walk the persisted links from `HEAD`,
    /// truncate at the first torn/lost link, repair `TAIL` to the last
    /// reachable node, and rewind the arena cursor past the reachable
    /// high-water mark. The durable log cells are deliberately left
    /// alone — that is what makes the planted inconsistencies real bugs
    /// rather than recovery-healed false positives.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn recover(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(ThreadId(0));
        let alloc = PmAllocator::open(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.root()?;
        let q = MsQueue { root };
        let mut head = view
            .load_u64(root + Q_HEAD, site!("msq.recover.read_head"))?
            .value();
        if q.node_index(head).is_none() {
            // Torn head: re-anchor on a fresh dummy in slot 0.
            let dummy = q.node_off(0);
            view.ntstore_u64(dummy + NODE_NEXT, 0u64, site!("msq.recover.redummy"))?;
            view.ntstore_u64(root + Q_HEAD, dummy, site!("msq.recover.rehead"))?;
            head = dummy;
        }
        let mut high_water = q.node_index(head).unwrap_or(0) + 1;
        let mut last = head;
        let mut steps = 0u64;
        let mut cursor = view
            .load_u64(head + NODE_NEXT, site!("msq.recover.read_next"))?
            .value();
        while cursor != 0 {
            let Some(idx) = q.node_index(cursor) else {
                // The link CAS was never flushed: truncate here.
                view.ntstore_u64(last + NODE_NEXT, 0u64, site!("msq.recover.truncate"))?;
                break;
            };
            steps += 1;
            if steps > CAP {
                view.ntstore_u64(last + NODE_NEXT, 0u64, site!("msq.recover.break_cycle"))?;
                break;
            }
            high_water = high_water.max(idx + 1);
            last = cursor;
            cursor = view
                .load_u64(cursor + NODE_NEXT, site!("msq.recover.read_link"))?
                .value();
        }
        // TAIL may lag or overshoot what survived: repair it.
        view.ntstore_u64(root + Q_TAIL, last, site!("msq.recover.tail"))?;
        view.ntstore_u64(root + NODE_CURSOR, high_water, site!("msq.recover.cursor"))?;
        Ok(q)
    }

    /// Pool offset of node `idx`'s base.
    fn node_off(&self, idx: u64) -> u64 {
        self.root + NODES + idx * NODE_SIZE
    }

    /// Inverse of [`Self::node_off`]: `Some(idx)` iff `off` is a valid
    /// node base inside the arena.
    fn node_index(&self, off: u64) -> Option<u64> {
        let base = self.root + NODES;
        if off < base {
            return None;
        }
        let rel = off - base;
        let idx = rel / NODE_SIZE;
        (rel.is_multiple_of(NODE_SIZE) && idx < CAP).then_some(idx)
    }

    /// Reserve one arena node by CAS-advancing the cursor.
    fn alloc_node(&self, view: &PmView) -> Result<Option<u64>, RtError> {
        let mut tries = 0;
        loop {
            let cur = view
                .load_u64(self.root + NODE_CURSOR, site!("msq.c:41.read_cursor"))?
                .value();
            if cur >= CAP {
                return Ok(None);
            }
            let (won, _) = view.cas_u64(
                self.root + NODE_CURSOR,
                cur,
                cur + 1,
                site!("msq.c:44.alloc_node"),
            )?;
            if won {
                view.persist(self.root + NODE_CURSOR, 8, site!("msq.c:45.flush_cursor"))?;
                return Ok(Some(self.node_off(cur)));
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(None);
            }
            view.spin_yield()?;
        }
    }

    /// Enqueue an item with the two-CAS Michael–Scott protocol.
    ///
    /// Both planted *write* sites live here — the payload store is never
    /// flushed (`msq.c:52`) and the linking CAS is never flushed
    /// (`msq.c:62`) — and so do bug 1's *read* (`msq.c:59`, another
    /// producer's half-linked pointer) and *effect* (`msq.c:72`, the
    /// durable repair log on the helping path).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RtError::Timeout`] on hangs).
    pub fn enqueue(&self, view: &PmView, item: u64) -> Result<OpResult, RtError> {
        view.branch(site!("msq.enqueue"));
        let Some(node) = self.alloc_node(view)? else {
            return Ok(OpResult::Missing);
        };
        // Bug 2 write side: the payload is a plain store with no persist
        // before the node becomes reachable.
        view.store_u64(node + NODE_VAL, item, site!("msq.c:52.store_val"))?;
        view.ntstore_u64(node + NODE_NEXT, 0u64, site!("msq.c:54.init_link"))?;
        let mut tries = 0;
        loop {
            let tail = view
                .load_u64(self.root + Q_TAIL, site!("msq.c:58.read_tail"))?
                .value();
            if self.node_index(tail).is_none() {
                return Ok(OpResult::Missing); // torn tail
            }
            // Bug 1 read side: another producer's unflushed linking CAS.
            let next = view.load_u64(tail + NODE_NEXT, site!("msq.c:59.read_next"))?;
            if next.value() == 0 {
                // Bug 1 write side: the publication CAS on tail.next is
                // never flushed — a crash drops the link.
                let (won, _) = view.cas_u64(tail + NODE_NEXT, 0, node, site!("msq.c:62.link"))?;
                if won {
                    // Between the two CASes the queue is half-linked and
                    // other producers may help: the classic Michael–Scott
                    // window, surfaced to the scheduler as a decision
                    // point.
                    view.spin_yield()?;
                    let _ =
                        view.cas_u64(self.root + Q_TAIL, tail, node, site!("msq.c:65.swing_tail"))?;
                    view.persist(self.root + Q_TAIL, 8, site!("msq.c:66.flush_tail"))?;
                    return Ok(OpResult::Done);
                }
            } else if self.node_index(next.value()).is_some() {
                // Helping path: swing TAIL over the half-linked node...
                let (helped, _) = view.cas_u64(
                    self.root + Q_TAIL,
                    tail,
                    next.value(),
                    site!("msq.c:69.help_swing"),
                )?;
                if helped {
                    view.persist(self.root + Q_TAIL, 8, site!("msq.c:70.flush_tail2"))?;
                    // Bug 1 durable side effect: log the repair we
                    // performed, sourced from the racy read above.
                    view.ntstore_u64(self.root + REPAIR_LOG, next, site!("msq.c:72.log_repair"))?;
                }
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(OpResult::Missing);
            }
            view.spin_yield()?;
        }
    }

    /// Dequeue the front item and durably log what was observed.
    ///
    /// Bug 2's *read* and *effect* sites live here: the racy payload read
    /// (`msq.c:90`) flows into the durable dequeue log (`msq.c:95`).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn dequeue(&self, view: &PmView) -> Result<OpResult, RtError> {
        view.branch(site!("msq.dequeue"));
        let mut tries = 0;
        loop {
            let head = view
                .load_u64(self.root + Q_HEAD, site!("msq.c:80.read_head"))?
                .value();
            if self.node_index(head).is_none() {
                return Ok(OpResult::Missing);
            }
            let tail = view
                .load_u64(self.root + Q_TAIL, site!("msq.c:82.read_tail2"))?
                .value();
            let next = view
                .load_u64(head + NODE_NEXT, site!("msq.c:83.read_next2"))?
                .value();
            if next == 0 {
                // Empty: linger briefly instead of giving up — a consumer
                // racing fresh producers, so campaigns overlap the roles.
                tries += 1;
                if tries >= MAX_TRIES {
                    return Ok(OpResult::Missing);
                }
                view.spin_yield()?;
                continue;
            }
            if self.node_index(next).is_none() {
                return Ok(OpResult::Missing); // torn link
            }
            if head == tail {
                // TAIL lags behind a half-finished enqueue: help it along
                // before consuming, like the textbook algorithm.
                let _ = view.cas_u64(
                    self.root + Q_TAIL,
                    tail,
                    next,
                    site!("msq.c:86.help_swing2"),
                )?;
                view.persist(self.root + Q_TAIL, 8, site!("msq.c:87.flush_tail3"))?;
            } else {
                // Bug 2 read side: the producer's unflushed payload.
                let val = view.load_u64(next + NODE_VAL, site!("msq.c:90.read_val"))?;
                let (won, _) = view.cas_u64(
                    self.root + Q_HEAD,
                    head,
                    next,
                    site!("msq.c:92.advance_head"),
                )?;
                if won {
                    view.persist(self.root + Q_HEAD, 8, site!("msq.c:93.flush_head"))?;
                    // Bug 2 durable side effect.
                    view.ntstore_u64(self.root + DEQ_LOG, val.clone(), site!("msq.c:95.log_deq"))?;
                    return Ok(OpResult::Found(val.value()));
                }
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(OpResult::Missing);
            }
            view.spin_yield()?;
        }
    }

    /// Read the front payload without consuming it (no durable side
    /// effect).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn peek(&self, view: &PmView) -> Result<OpResult, RtError> {
        view.branch(site!("msq.peek"));
        let head = view
            .load_u64(self.root + Q_HEAD, site!("msq.peek.read_head"))?
            .value();
        if self.node_index(head).is_none() {
            return Ok(OpResult::Missing);
        }
        let next = view
            .load_u64(head + NODE_NEXT, site!("msq.peek.read_next"))?
            .value();
        if next == 0 || self.node_index(next).is_none() {
            return Ok(OpResult::Missing);
        }
        let val = view.load_u64(next + NODE_VAL, site!("msq.peek.read_val"))?;
        Ok(OpResult::Found(val.value()))
    }

    /// Payloads currently queued, front first (dummy excluded) — the
    /// recovery audit's view of the structure. Bounded and cycle-checked.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn elements(&self, view: &PmView) -> Result<Vec<u64>, RtError> {
        let mut out = Vec::new();
        let head = view
            .load_u64(self.root + Q_HEAD, site!("msq.audit.read_head"))?
            .value();
        if self.node_index(head).is_none() {
            return Ok(out);
        }
        let mut cursor = view
            .load_u64(head + NODE_NEXT, site!("msq.audit.read_next"))?
            .value();
        while cursor != 0 && self.node_index(cursor).is_some() && out.len() < CAP as usize {
            out.push(
                view.load_u64(cursor + NODE_VAL, site!("msq.audit.read_val"))?
                    .value(),
            );
            cursor = view
                .load_u64(cursor + NODE_NEXT, site!("msq.audit.read_link"))?
                .value();
        }
        Ok(out)
    }
}

/// Pack an op's key/value into a payload (nonzero so a lost, zeroed
/// payload is distinguishable from a stored one).
fn encode(key: u64, value: u64) -> u64 {
    (key << 8 | (value & 0xff)).max(1)
}

impl Target for MsQueue {
    fn name(&self) -> &'static str {
        "ms-queue"
    }

    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
        // Role split: driver thread 0 is the single consumer, every other
        // driver thread produces. Bug 2 is inter-thread by construction;
        // bug 1's helping path needs two racing producers, so campaigns
        // should run ≥3 threads.
        if view.tid() == ThreadId(0) {
            match *op {
                Op::Get { .. } => self.peek(view),
                _ => self.dequeue(view),
            }
        } else {
            match *op {
                Op::Insert { key, value } | Op::Update { key, value } => {
                    self.enqueue(view, encode(key, value))
                }
                Op::Incr { key, by } | Op::Decr { key, by } => self.enqueue(view, encode(key, by)),
                Op::Delete { key } | Op::Get { key } => self.enqueue(view, encode(key, 0)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fresh_session, recovery_session};
    use pmrace_pmem::Pool;

    #[test]
    fn enqueue_dequeue_is_fifo_single_thread() {
        let session = fresh_session();
        let q = MsQueue::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for v in [11u64, 22, 33] {
            assert_eq!(q.enqueue(&view, v).unwrap(), OpResult::Done);
        }
        assert_eq!(q.peek(&view).unwrap(), OpResult::Found(11));
        assert_eq!(q.dequeue(&view).unwrap(), OpResult::Found(11));
        assert_eq!(q.dequeue(&view).unwrap(), OpResult::Found(22));
        assert_eq!(q.dequeue(&view).unwrap(), OpResult::Found(33));
        assert_eq!(q.dequeue(&view).unwrap(), OpResult::Missing);
    }

    #[test]
    fn unflushed_links_mean_enqueues_roll_back_across_a_crash() {
        let session = fresh_session();
        let q = MsQueue::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for v in [7u64, 8, 9] {
            q.enqueue(&view, v).unwrap();
        }
        // The linking CASes were never flushed: only the dummy survives.
        let img = session.pool().crash_image().unwrap();
        let pool = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = recovery_session(pool);
        let rec = MsQueue::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        assert!(
            rec.elements(&v2).unwrap().is_empty(),
            "lost enqueues: bug 1's crash shape"
        );
        // Recovery repaired TAIL and rewound the cursor: still usable.
        assert_eq!(rec.enqueue(&v2, 1).unwrap(), OpResult::Done);
        assert_eq!(rec.dequeue(&v2).unwrap(), OpResult::Found(1));
    }
}

//! A persistent Harris-style lock-free sorted list with two planted bugs.
//!
//! Nodes are reserved from a bounded CAS-advanced arena and linked in key
//! order. Deletion is two-phase in the Harris style: the deleter only
//! *logically* deletes, CAS-setting the mark bit in the victim's `next`
//! pointer; physical unlinking is left to whichever traversal next
//! encounters the marked node, which *helps* by unlinking it and durably
//! logging the repair. Two PM inter-thread inconsistencies are planted:
//!
//! 1. **Missing fence on the mark** (`hlist.c:88` / `hlist.c:65` /
//!    `hlist.c:70`) — the deleter issues a `clwb` on the marked pointer
//!    but never the `sfence`, so the mark is still in flight when a
//!    helping thread reads it, unlinks the node, and durably logs the
//!    marked pointer value. A crash drops the in-flight mark (and the
//!    helper's never-persisted view of it): the node resurrects while
//!    the durable unlink log claims it was removed.
//! 2. **Unflushed payload behind a durable link** (`hlist.c:49` /
//!    `hlist.c:103` / `hlist.c:105`) — the key and the links are durable
//!    by publication time, but the payload is a plain store with no
//!    persist. A concurrent `get` reads the payload and durably logs it;
//!    a crash loses the payload while the find log claims the value.
//!
//! Recovery walks the persisted links, completes pending (durable)
//! deletions, truncates at torn pointers, and rewinds the arena cursor —
//! but never heals the durable log cells, so post-failure validation
//! classifies both findings as genuine.

use std::sync::Arc;

use pmrace_api::{Op, OpResult, OpWeights, SeedHints, Target, TargetSpec};
use pmrace_pmem::{PmAllocator, PoolOpts, ThreadId};
use pmrace_runtime::{site, PmView, RtError, Session};

// Root layout: head sentinel's next pointer, two durable log cells, the
// node-arena cursor, then the node arena. Every field sits on its own
// cache line: `clwb` write-back covers whole 64-byte lines, so
// co-locating the deliberately-unflushed payload with the link/key cells
// the code *does* persist would drag it to durability by false sharing.
const HEAD_NEXT: u64 = 0;
/// Durable log: the payload a lookup observed (bug 2's effect cell).
const FIND_LOG: u64 = 64;
/// Durable log: the marked pointer a (helping) unlink removed (bug 1's
/// effect cell).
const UNLINK_LOG: u64 = 128;
const NODE_CURSOR: u64 = 192;
const NODES: u64 = 256;
/// Node layout: next pointer (mark in bit 0) and key share the first
/// cache line (both durable by publication time); the payload sits on
/// its own line so link flushes cannot flush it along.
const NODE_NEXT: u64 = 0;
const NODE_KEY: u64 = 8;
const NODE_VAL: u64 = 64;
const NODE_SIZE: u64 = 128;
/// Logical-deletion mark: bit 0 of a node's `next` pointer (node offsets
/// are 8-aligned, so the bit is free).
const MARK: u64 = 1;
/// Arena capacity in nodes.
const CAP: u64 = 128;
const ROOT_SIZE: usize = (NODES + CAP * NODE_SIZE) as usize;

/// Bounded optimistic retries before an op gives up.
const MAX_TRIES: u32 = 64;

/// Keyed grammar on a tiny key space: inserts, updates, and deletes all
/// collide on the same few nodes, keeping marks and helping traffic hot.
const HINTS: SeedHints = SeedHints {
    key_range: 6,
    hot_keys: 3,
    max_value: 16,
    max_step: 4,
    weights: OpWeights {
        insert: 40,
        get: 8,
        update: 22,
        delete: 26,
        incr: 2,
        decr: 2,
    },
};

/// The list instance bound to a session's pool.
#[derive(Debug)]
pub struct HarrisList {
    root: u64,
}

/// Registration entry for the suite (`register_lockfree`).
pub static SPEC: TargetSpec = TargetSpec::new(
    "harris-list",
    |session| Ok(Arc::new(HarrisList::init(session)?) as Arc<dyn Target>),
    |session| Ok(Arc::new(HarrisList::recover(session)?) as Arc<dyn Target>),
    PoolOpts::small,
)
.with_hints(HINTS);

/// What a search found: the address of the pointer field referencing
/// `curr`, the candidate node (0 at end of list), and its key.
struct Found {
    pred_addr: u64,
    curr: u64,
    curr_key: u64,
}

impl HarrisList {
    /// Format the session's pool and build an empty list.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn init(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.alloc(ROOT_SIZE, view.tid())?;
        alloc.set_root(root, view.tid())?;
        view.ntstore_u64(root + HEAD_NEXT, 0u64, site!("hlist.init.head"))?;
        view.ntstore_u64(root + FIND_LOG, 0u64, site!("hlist.init.find_log"))?;
        view.ntstore_u64(root + UNLINK_LOG, 0u64, site!("hlist.init.unlink_log"))?;
        view.ntstore_u64(root + NODE_CURSOR, 0u64, site!("hlist.init.cursor"))?;
        Ok(HarrisList { root })
    }

    /// Reopen an existing pool: walk the persisted links, complete any
    /// durable pending deletions (marked nodes are unlinked), truncate at
    /// the first torn pointer, and rewind the arena cursor past the
    /// highest reachable slot. The durable log cells are deliberately
    /// left alone — that is what makes the planted inconsistencies real
    /// bugs rather than recovery-healed false positives.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn recover(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(ThreadId(0));
        let alloc = PmAllocator::open(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.root()?;
        let list = HarrisList { root };
        let mut high_water = 0u64;
        let mut steps = 0u64;
        let mut pred_addr = root + HEAD_NEXT;
        let mut curr = view
            .load_u64(pred_addr, site!("hlist.recover.read_head"))?
            .value();
        while curr != 0 {
            let Some(idx) = list.node_index(curr) else {
                view.ntstore_u64(pred_addr, 0u64, site!("hlist.recover.truncate"))?;
                break;
            };
            steps += 1;
            if steps > CAP {
                view.ntstore_u64(pred_addr, 0u64, site!("hlist.recover.break_cycle"))?;
                break;
            }
            high_water = high_water.max(idx + 1);
            let next = view
                .load_u64(curr + NODE_NEXT, site!("hlist.recover.read_next"))?
                .value();
            if next & MARK != 0 {
                // A durably marked node: complete the deletion.
                view.ntstore_u64(pred_addr, next & !MARK, site!("hlist.recover.unlink"))?;
                curr = next & !MARK;
                continue;
            }
            pred_addr = curr + NODE_NEXT;
            curr = next;
        }
        view.ntstore_u64(
            root + NODE_CURSOR,
            high_water,
            site!("hlist.recover.cursor"),
        )?;
        Ok(list)
    }

    /// Pool offset of node `idx`'s base.
    fn node_off(&self, idx: u64) -> u64 {
        self.root + NODES + idx * NODE_SIZE
    }

    /// Inverse of [`Self::node_off`]: `Some(idx)` iff `off` is a valid
    /// node base inside the arena.
    fn node_index(&self, off: u64) -> Option<u64> {
        let base = self.root + NODES;
        if off < base {
            return None;
        }
        let rel = off - base;
        let idx = rel / NODE_SIZE;
        (rel.is_multiple_of(NODE_SIZE) && idx < CAP).then_some(idx)
    }

    /// Reserve one arena node by CAS-advancing the cursor.
    fn alloc_node(&self, view: &PmView) -> Result<Option<u64>, RtError> {
        let mut tries = 0;
        loop {
            let cur = view
                .load_u64(self.root + NODE_CURSOR, site!("hlist.c:41.read_cursor"))?
                .value();
            if cur >= CAP {
                return Ok(None);
            }
            let (won, _) = view.cas_u64(
                self.root + NODE_CURSOR,
                cur,
                cur + 1,
                site!("hlist.c:44.alloc_node"),
            )?;
            if won {
                view.persist(self.root + NODE_CURSOR, 8, site!("hlist.c:45.flush_cursor"))?;
                return Ok(Some(self.node_off(cur)));
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(None);
            }
            view.spin_yield()?;
        }
    }

    /// Walk to the first node with key ≥ `key`, helping any pending
    /// deletion met on the way.
    ///
    /// The helping path carries bug 1's *read* and *effect*: the marked
    /// pointer is re-read at `hlist.c:65` (the deleter's `clwb` without
    /// `sfence` leaves it non-persisted, so the read is racy) and then
    /// durably logged at `hlist.c:70` once the unlink lands.
    ///
    /// Returns `None` when the walk budget is exhausted (torn pointer,
    /// cycle, or too much contention).
    fn search(&self, view: &PmView, key: u64) -> Result<Option<Found>, RtError> {
        let mut restarts = 0;
        'restart: loop {
            let mut pred_addr = self.root + HEAD_NEXT;
            let mut curr = view
                .load_u64(pred_addr, site!("hlist.c:58.read_head"))?
                .value();
            let mut steps = 0u64;
            while curr != 0 {
                if self.node_index(curr).is_none() {
                    return Ok(None); // torn pointer
                }
                steps += 1;
                if steps > CAP + 2 {
                    return Ok(None); // cycle
                }
                let next = view.load_u64(curr + NODE_NEXT, site!("hlist.c:61.read_next"))?;
                if next.value() & MARK != 0 {
                    // Bug 1 read side: the deleter's mark was clwb'd but
                    // never fenced, so this observes in-flight data.
                    let marked =
                        view.load_u64(curr + NODE_NEXT, site!("hlist.c:65.read_marked"))?;
                    let succ = marked.value() & !MARK;
                    let (won, _) =
                        view.cas_u64(pred_addr, curr, succ, site!("hlist.c:67.help_unlink"))?;
                    if won {
                        // The unlink itself is deliberately unpersisted —
                        // the helper trusts the deleter's mark (which was
                        // never fenced durable either). Only the repair
                        // log below is made durable.
                        // Bug 1 durable side effect: log the repair.
                        view.ntstore_u64(
                            self.root + UNLINK_LOG,
                            marked,
                            site!("hlist.c:70.log_unlink"),
                        )?;
                        curr = succ;
                        continue;
                    }
                    restarts += 1;
                    if restarts >= MAX_TRIES {
                        return Ok(None);
                    }
                    view.spin_yield()?;
                    continue 'restart;
                }
                let k = view
                    .load_u64(curr + NODE_KEY, site!("hlist.c:73.read_key"))?
                    .value();
                if k >= key {
                    return Ok(Some(Found {
                        pred_addr,
                        curr,
                        curr_key: k,
                    }));
                }
                pred_addr = curr + NODE_NEXT;
                curr = next.value();
            }
            return Ok(Some(Found {
                pred_addr,
                curr: 0,
                curr_key: 0,
            }));
        }
    }

    /// Insert `key -> val` (or update the payload in place if present).
    ///
    /// Bug 2's *write* site lives here: the payload store (`hlist.c:49`)
    /// is never flushed, even though the key and the publication link are
    /// durable by the time the node is reachable.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RtError::Timeout`] on hangs).
    pub fn insert(&self, view: &PmView, key: u64, val: u64) -> Result<OpResult, RtError> {
        view.branch(site!("hlist.insert"));
        let mut node = 0u64;
        let mut tries = 0;
        loop {
            let Some(found) = self.search(view, key)? else {
                return Ok(OpResult::Missing);
            };
            if found.curr != 0 && found.curr_key == key {
                // Bug 2 write side (update flavor): in-place payload store,
                // no persist.
                view.store_u64(found.curr + NODE_VAL, val, site!("hlist.c:49.store_val"))?;
                return Ok(OpResult::Done);
            }
            if node == 0 {
                let Some(n) = self.alloc_node(view)? else {
                    return Ok(OpResult::Missing);
                };
                node = n;
                view.ntstore_u64(node + NODE_KEY, key, site!("hlist.c:46.store_key"))?;
                // Bug 2 write side (insert flavor): the payload is a plain
                // store with no persist before the node is published.
                view.store_u64(node + NODE_VAL, val, site!("hlist.c:49.store_val"))?;
            }
            view.store_u64(node + NODE_NEXT, found.curr, site!("hlist.c:76.store_link"))?;
            // The links *are* durable before and after publication — only
            // the payload (bug 2) travels unflushed.
            view.persist(node + NODE_NEXT, 8, site!("hlist.c:77.flush_link"))?;
            let (won, _) = view.cas_u64(
                found.pred_addr,
                found.curr,
                node,
                site!("hlist.c:79.publish"),
            )?;
            if won {
                view.persist(found.pred_addr, 8, site!("hlist.c:81.flush_publish"))?;
                return Ok(OpResult::Done);
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(OpResult::Missing);
            }
            view.spin_yield()?;
        }
    }

    /// Delete `key` Harris-style: logical deletion only — CAS the mark
    /// bit in, leave the physical unlink to the next traversal that
    /// encounters the node (the helping path in `search`).
    ///
    /// Bug 1's *write* site lives here: the marking CAS (`hlist.c:88`) is
    /// followed by a `clwb` but **no `sfence`** — the mark never becomes
    /// durable before helpers act on it (the deleter trusts the
    /// write-back to land, which nothing fences).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn delete(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("hlist.delete"));
        let mut tries = 0;
        loop {
            let Some(found) = self.search(view, key)? else {
                return Ok(OpResult::Missing);
            };
            if found.curr == 0 || found.curr_key != key {
                // Not there (yet): linger briefly instead of giving up — a
                // deleter racing fresh inserters, so campaigns overlap the
                // roles.
                tries += 1;
                if tries >= MAX_TRIES {
                    return Ok(OpResult::Missing);
                }
                view.spin_yield()?;
                continue;
            }
            let next = view
                .load_u64(found.curr + NODE_NEXT, site!("hlist.c:86.read_next_del"))?
                .value();
            if next & MARK != 0 {
                return Ok(OpResult::Missing); // another deleter won
            }
            // Bug 1 write side: logical deletion by CAS...
            let (won, _) = view.cas_u64(
                found.curr + NODE_NEXT,
                next,
                next | MARK,
                site!("hlist.c:88.mark"),
            )?;
            if won {
                // ...followed by a clwb with a missing sfence: the mark is
                // scheduled for write-back but never fenced durable. The
                // physical unlink is left to the next traversal's helping
                // path, which acts on this still-in-flight mark.
                view.clwb(found.curr + NODE_NEXT, 8, site!("hlist.c:89.clwb_mark"))?;
                return Ok(OpResult::Done);
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(OpResult::Missing);
            }
            view.spin_yield()?;
        }
    }

    /// Look `key` up and durably log the observed payload.
    ///
    /// Bug 2's *read* and *effect* sites live here: the racy payload read
    /// (`hlist.c:103`) flows into the durable find log (`hlist.c:105`).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn get(&self, view: &PmView, key: u64) -> Result<OpResult, RtError> {
        view.branch(site!("hlist.get"));
        let mut tries = 0;
        loop {
            let Some(found) = self.search(view, key)? else {
                return Ok(OpResult::Missing);
            };
            if found.curr == 0 || found.curr_key != key {
                // Not there (yet): linger briefly instead of giving up — a
                // reader racing fresh inserters, so campaigns overlap the
                // roles.
                tries += 1;
                if tries >= MAX_TRIES {
                    return Ok(OpResult::Missing);
                }
                view.spin_yield()?;
                continue;
            }
            // Bug 2 read side: the inserter's unflushed payload.
            let val = view.load_u64(found.curr + NODE_VAL, site!("hlist.c:103.read_val"))?;
            // Bug 2 durable side effect.
            view.ntstore_u64(
                self.root + FIND_LOG,
                val.clone(),
                site!("hlist.c:105.log_find"),
            )?;
            return Ok(OpResult::Found(val.value()));
        }
    }

    /// Unmarked `(key, payload)` pairs in list order — the recovery
    /// audit's view of the structure. Bounded and cycle-checked.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn elements(&self, view: &PmView) -> Result<Vec<(u64, u64)>, RtError> {
        let mut out = Vec::new();
        let mut curr = view
            .load_u64(self.root + HEAD_NEXT, site!("hlist.audit.read_head"))?
            .value();
        while curr != 0 && self.node_index(curr).is_some() && out.len() < CAP as usize {
            let next = view
                .load_u64(curr + NODE_NEXT, site!("hlist.audit.read_next"))?
                .value();
            if next & MARK == 0 {
                out.push((
                    view.load_u64(curr + NODE_KEY, site!("hlist.audit.read_key"))?
                        .value(),
                    view.load_u64(curr + NODE_VAL, site!("hlist.audit.read_val"))?
                        .value(),
                ));
            }
            curr = next & !MARK;
        }
        Ok(out)
    }
}

/// Pack an op's key/value into a payload (nonzero so a lost, zeroed
/// payload is distinguishable from a stored one).
fn encode(key: u64, value: u64) -> u64 {
    (key << 8 | (value & 0xff)).max(1)
}

impl Target for HarrisList {
    fn name(&self) -> &'static str {
        "harris-list"
    }

    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
        // Role split: driver thread 0 reads and deletes, every other
        // driver thread inserts/updates. Marks therefore come from thread
        // 0 and are helped by other threads' searches, and payload reads
        // in `get` only observe other threads' unflushed stores — both
        // planted bugs are strictly inter-thread.
        if view.tid() == ThreadId(0) {
            match *op {
                Op::Delete { key } | Op::Decr { key, .. } => self.delete(view, key),
                Op::Insert { key, .. }
                | Op::Update { key, .. }
                | Op::Get { key }
                | Op::Incr { key, .. } => self.get(view, key),
            }
        } else {
            match *op {
                Op::Insert { key, value } | Op::Update { key, value } => {
                    self.insert(view, key, encode(key, value))
                }
                Op::Incr { key, by } | Op::Decr { key, by } => {
                    self.insert(view, key, encode(key, by))
                }
                Op::Get { key } | Op::Delete { key } => self.insert(view, key, encode(key, 0)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fresh_session, recovery_session};
    use pmrace_pmem::Pool;

    #[test]
    fn insert_get_delete_roundtrip_single_thread() {
        let session = fresh_session();
        let list = HarrisList::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for k in [3u64, 1, 2] {
            assert_eq!(list.insert(&view, k, k * 100).unwrap(), OpResult::Done);
        }
        assert_eq!(list.get(&view, 2).unwrap(), OpResult::Found(200));
        // Sorted order regardless of insertion order.
        let keys: Vec<u64> = list.elements(&view).unwrap().iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(list.delete(&view, 2).unwrap(), OpResult::Done);
        assert_eq!(list.get(&view, 2).unwrap(), OpResult::Missing);
        // Update in place.
        assert_eq!(list.insert(&view, 1, 111).unwrap(), OpResult::Done);
        assert_eq!(list.get(&view, 1).unwrap(), OpResult::Found(111));
    }

    #[test]
    fn unflushed_payload_is_lost_behind_the_durable_link() {
        let session = fresh_session();
        let list = HarrisList::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        list.insert(&view, 5, 555).unwrap();
        // Key and links are durable; the payload store never was.
        let img = session.pool().crash_image().unwrap();
        let pool = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = recovery_session(pool);
        let rec = HarrisList::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        assert_eq!(
            rec.elements(&v2).unwrap(),
            vec![(5, 0)],
            "node survives, payload is lost: bug 2's crash shape"
        );
    }

    #[test]
    fn unfenced_mark_resurrects_the_deleted_node_across_a_crash() {
        let session = fresh_session();
        let list = HarrisList::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for k in [1u64, 2, 3] {
            list.insert(&view, k, k).unwrap();
        }
        assert_eq!(list.delete(&view, 2).unwrap(), OpResult::Done);
        let keys: Vec<u64> = list.elements(&view).unwrap().iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![1, 3], "runtime view: 2 is gone");
        // Another thread's traversal walks past the marked node and
        // helps: it unlinks (unpersisted) and durably logs the removal.
        // Its own sfence (inside the unlink persist) does not drain the
        // *deleter's* pending mark write-back — fences are per-thread —
        // so the mark stays in flight.
        let helper = session.view(ThreadId(1));
        assert_eq!(list.get(&helper, 3).unwrap(), OpResult::Found(3));
        // The mark was clwb'd but never fenced and the unlink was never
        // persisted — only the durable unlink log survives the crash.
        let img = session.pool().crash_image().unwrap();
        assert_ne!(
            img.load_u64(list.root + UNLINK_LOG).unwrap(),
            0,
            "the removal is durably logged"
        );
        let pool = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = recovery_session(pool);
        let rec = HarrisList::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        let keys: Vec<u64> = rec.elements(&v2).unwrap().iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![1, 2, 3], "2 resurrected: bug 1's crash shape");
    }
}

//! Shared helpers for the suite's unit and crash-image tests.

use std::sync::Arc;

use pmrace_pmem::{Pool, PoolOpts};
use pmrace_runtime::{Session, SessionConfig};

/// A session over a fresh small pool, default config.
pub fn fresh_session() -> Arc<Session> {
    Session::new(
        Arc::new(Pool::new(PoolOpts::small())),
        SessionConfig::default(),
    )
}

/// A session over a recovered pool (e.g. built from a crash image),
/// default config — mirrors how post-failure validation drives recovery.
pub fn recovery_session(pool: Arc<Pool>) -> Arc<Session> {
    Session::new(pool, SessionConfig::default())
}

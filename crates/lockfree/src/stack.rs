//! A persistent Treiber stack with two planted CAS-publication bugs.
//!
//! Pushes reserve a node from a bounded in-pool arena (itself a lock-free
//! CAS-advanced cursor), fill it, durably link it, and publish it by CAS
//! on `TOP`. Pops race the publishers on `TOP` and durably log what they
//! observed. Two PM inter-thread inconsistencies are planted, both in the
//! shape PMRace reports for log-free persistent structures:
//!
//! 1. **Unflushed CAS-published `TOP`** (`tstack.c:63` / `tstack.c:74` /
//!    `tstack.c:89`) — the push CAS publishes the new node but never
//!    persists `TOP`. A concurrent pop racy-reads `TOP` and durably logs
//!    the observed source pointer. A crash rolls `TOP` back to the old
//!    node while the pop log claims an element that was never durably
//!    pushed was consumed.
//! 2. **Unflushed payload behind a durable link** (`tstack.c:52` /
//!    `tstack.c:86` / `tstack.c:91`) — the node's `next` link *is*
//!    flushed before publication, but the payload is a plain store with
//!    no persist. A pop reads the payload and durably logs the value; a
//!    crash loses the payload while the durable log claims it.
//!
//! Recovery rewinds the structural cursors defensively (bounded,
//! cycle-checked walk) but — like the real bugs — never heals the durable
//! log cells, so post-failure validation classifies both findings as
//! genuine.

use std::sync::Arc;

use pmrace_api::{Op, OpResult, OpWeights, SeedHints, Target, TargetSpec};
use pmrace_pmem::{PmAllocator, PoolOpts, ThreadId};
use pmrace_runtime::{site, PmView, RtError, Session};

// Root layout: top pointer, two durable log cells, node-arena cursor,
// then the node arena itself. Every field sits on its own cache line:
// `clwb` write-back covers whole 64-byte lines, so co-locating the
// deliberately-unflushed cells (TOP, payloads) with cells the code *does*
// persist (cursor, links) would drag them to durability by false sharing.
const TOP: u64 = 0;
/// Durable log: the `TOP` value a pop observed (bug 1's effect cell).
const POP_SRC_LOG: u64 = 64;
/// Durable log: the last popped payload (bug 2's effect cell).
const POP_LOG: u64 = 128;
const NODE_CURSOR: u64 = 192;
const NODES: u64 = 256;
/// Node layout: `next` pointer and payload on separate cache lines, so
/// flushing the link (`tstack.c:60`) cannot flush the payload with it.
const NODE_NEXT: u64 = 0;
const NODE_VAL: u64 = 64;
const NODE_SIZE: u64 = 128;
/// Arena capacity in nodes; bounded so campaigns exhaust and re-walk it.
const CAP: u64 = 256;
const ROOT_SIZE: usize = (NODES + CAP * NODE_SIZE) as usize;

/// Bounded optimistic retries before an op gives up (keeps contended
/// campaigns from spinning to the deadline).
const MAX_TRIES: u32 = 64;

/// Push/pop-heavy grammar: keys only flavor payloads, so a small hot
/// range maximizes cross-thread traffic on `TOP`.
const HINTS: SeedHints = SeedHints {
    key_range: 12,
    hot_keys: 3,
    max_value: 16,
    max_step: 6,
    weights: OpWeights {
        insert: 42,
        get: 8,
        update: 0,
        delete: 38,
        incr: 4,
        decr: 8,
    },
};

/// The stack instance bound to a session's pool.
#[derive(Debug)]
pub struct TreiberStack {
    root: u64,
}

/// Registration entry for the suite (`register_lockfree`).
pub static SPEC: TargetSpec = TargetSpec::new(
    "treiber-stack",
    |session| Ok(Arc::new(TreiberStack::init(session)?) as Arc<dyn Target>),
    |session| Ok(Arc::new(TreiberStack::recover(session)?) as Arc<dyn Target>),
    PoolOpts::small,
)
.with_hints(HINTS);

impl TreiberStack {
    /// Format the session's pool and build an empty stack.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn init(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.alloc(ROOT_SIZE, view.tid())?;
        alloc.set_root(root, view.tid())?;
        view.ntstore_u64(root + TOP, 0u64, site!("tstack.init.top"))?;
        view.ntstore_u64(root + POP_SRC_LOG, 0u64, site!("tstack.init.pop_src_log"))?;
        view.ntstore_u64(root + POP_LOG, 0u64, site!("tstack.init.pop_log"))?;
        view.ntstore_u64(root + NODE_CURSOR, 0u64, site!("tstack.init.cursor"))?;
        Ok(TreiberStack { root })
    }

    /// Reopen an existing pool: walk the stack defensively (bounded,
    /// cycle-checked), truncate at the first dangling link, and rewind the
    /// arena cursor past the reachable high-water mark. The durable log
    /// cells are deliberately left alone — that is what makes the planted
    /// inconsistencies real bugs rather than recovery-healed false
    /// positives.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn recover(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(ThreadId(0));
        let alloc = PmAllocator::open(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.root()?;
        let stack = TreiberStack { root };
        let mut high_water = 0u64;
        let mut steps = 0u64;
        let mut cursor = view
            .load_u64(root + TOP, site!("tstack.recover.read_top"))?
            .value();
        while cursor != 0 {
            let Some(idx) = stack.node_index(cursor) else {
                // Dangling top/link (e.g. the unflushed-TOP crash):
                // truncate the stack here.
                view.ntstore_u64(root + TOP, 0u64, site!("tstack.recover.truncate"))?;
                break;
            };
            steps += 1;
            if steps > CAP {
                // Cycle: a torn link closed a loop. Empty the stack.
                view.ntstore_u64(root + TOP, 0u64, site!("tstack.recover.break_cycle"))?;
                break;
            }
            high_water = high_water.max(idx + 1);
            cursor = view
                .load_u64(cursor + NODE_NEXT, site!("tstack.recover.read_link"))?
                .value();
        }
        view.ntstore_u64(
            root + NODE_CURSOR,
            high_water,
            site!("tstack.recover.cursor"),
        )?;
        Ok(stack)
    }

    /// Pool offset of node `idx`'s base.
    fn node_off(&self, idx: u64) -> u64 {
        self.root + NODES + idx * NODE_SIZE
    }

    /// Inverse of [`Self::node_off`]: `Some(idx)` iff `off` is a valid
    /// node base inside the arena.
    fn node_index(&self, off: u64) -> Option<u64> {
        let base = self.root + NODES;
        if off < base {
            return None;
        }
        let rel = off - base;
        let idx = rel / NODE_SIZE;
        (rel.is_multiple_of(NODE_SIZE) && idx < CAP).then_some(idx)
    }

    /// Reserve one arena node by CAS-advancing the cursor.
    fn alloc_node(&self, view: &PmView) -> Result<Option<u64>, RtError> {
        let mut tries = 0;
        loop {
            let cur = view
                .load_u64(self.root + NODE_CURSOR, site!("tstack.c:38.read_cursor"))?
                .value();
            if cur >= CAP {
                return Ok(None); // arena exhausted
            }
            let (won, _) = view.cas_u64(
                self.root + NODE_CURSOR,
                cur,
                cur + 1,
                site!("tstack.c:41.alloc_node"),
            )?;
            if won {
                view.persist(
                    self.root + NODE_CURSOR,
                    8,
                    site!("tstack.c:42.flush_cursor"),
                )?;
                return Ok(Some(self.node_off(cur)));
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(None);
            }
            view.spin_yield()?;
        }
    }

    /// Push an item: fill a node, durably link it, publish it by CAS.
    ///
    /// Both planted *write* sites live here: the payload store is never
    /// flushed (`tstack.c:52`), and the winning publication CAS leaves
    /// `TOP` unpersisted (`tstack.c:63`).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RtError::Timeout`] on hangs).
    pub fn push(&self, view: &PmView, item: u64) -> Result<OpResult, RtError> {
        view.branch(site!("tstack.push"));
        let Some(node) = self.alloc_node(view)? else {
            return Ok(OpResult::Missing);
        };
        // Bug 2 write side: the payload is a plain store with no persist
        // before the node becomes reachable.
        view.store_u64(node + NODE_VAL, item, site!("tstack.c:52.store_payload"))?;
        let mut tries = 0;
        loop {
            let top = view
                .load_u64(self.root + TOP, site!("tstack.c:58.read_top"))?
                .value();
            view.store_u64(node + NODE_NEXT, top, site!("tstack.c:59.store_link"))?;
            // The link *is* durable before publication — only the payload
            // (bug 2) and the publication itself (bug 1) are not.
            view.persist(node + NODE_NEXT, 8, site!("tstack.c:60.flush_link"))?;
            // Bug 1 write side: the publication is CAS'd in and never
            // flushed — a crash rolls the top back.
            let (won, _) =
                view.cas_u64(self.root + TOP, top, node, site!("tstack.c:63.publish_top"))?;
            if won {
                return Ok(OpResult::Done);
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(OpResult::Missing);
            }
            view.spin_yield()?;
        }
    }

    /// Pop the top item and durably log what was observed.
    ///
    /// Both planted *read* and *effect* sites live here: the racy `TOP`
    /// read (`tstack.c:74`) flows into the durable pop-source log
    /// (`tstack.c:89`), and the racy payload read (`tstack.c:86`) flows
    /// into the durable pop log (`tstack.c:91`).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn pop(&self, view: &PmView) -> Result<OpResult, RtError> {
        view.branch(site!("tstack.pop"));
        let mut tries = 0;
        loop {
            // Bug 1 read side: another thread's unflushed publication CAS.
            let top = view.load_u64(self.root + TOP, site!("tstack.c:74.read_top"))?;
            if top.value() == 0 {
                // Empty: linger briefly instead of giving up — a consumer
                // racing fresh producers, so campaigns overlap the roles.
                tries += 1;
                if tries >= MAX_TRIES {
                    return Ok(OpResult::Missing);
                }
                view.spin_yield()?;
                continue;
            }
            if self.node_index(top.value()).is_none() {
                // Torn top (seen mid-crash in validation recovery runs).
                return Ok(OpResult::Missing);
            }
            let next = view.load_u64(top.value() + NODE_NEXT, site!("tstack.c:79.read_link"))?;
            let (won, _) = view.cas_u64(
                self.root + TOP,
                top.value(),
                next,
                site!("tstack.c:81.pop_top"),
            )?;
            if won {
                // Bug 2 read side: the pusher's unflushed payload.
                let val =
                    view.load_u64(top.value() + NODE_VAL, site!("tstack.c:86.read_payload"))?;
                // Bug 1 durable side effect: log where we popped from.
                view.ntstore_u64(
                    self.root + POP_SRC_LOG,
                    top.clone(),
                    site!("tstack.c:89.log_pop_src"),
                )?;
                // Bug 2 durable side effect.
                view.ntstore_u64(
                    self.root + POP_LOG,
                    val.clone(),
                    site!("tstack.c:91.log_popped"),
                )?;
                return Ok(OpResult::Found(val.value()));
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(OpResult::Missing);
            }
            view.spin_yield()?;
        }
    }

    /// Read the top payload without popping (no durable side effect).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn peek(&self, view: &PmView) -> Result<OpResult, RtError> {
        view.branch(site!("tstack.peek"));
        let top = view.load_u64(self.root + TOP, site!("tstack.peek.read_top"))?;
        if top.value() == 0 || self.node_index(top.value()).is_none() {
            return Ok(OpResult::Missing);
        }
        let val = view.load_u64(top.value() + NODE_VAL, site!("tstack.peek.read_payload"))?;
        Ok(OpResult::Found(val.value()))
    }

    /// Payloads currently on the stack, top first — the recovery audit's
    /// view of the structure. Bounded and cycle-checked like recovery.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn elements(&self, view: &PmView) -> Result<Vec<u64>, RtError> {
        let mut out = Vec::new();
        let mut cursor = view
            .load_u64(self.root + TOP, site!("tstack.audit.read_top"))?
            .value();
        while cursor != 0 && self.node_index(cursor).is_some() && out.len() < CAP as usize {
            out.push(
                view.load_u64(cursor + NODE_VAL, site!("tstack.audit.read_payload"))?
                    .value(),
            );
            cursor = view
                .load_u64(cursor + NODE_NEXT, site!("tstack.audit.read_link"))?
                .value();
        }
        Ok(out)
    }
}

/// Pack an op's key/value into a payload (nonzero so empty slots stay
/// distinguishable in pool dumps).
fn encode(key: u64, value: u64) -> u64 {
    (key << 8 | (value & 0xff)).max(1)
}

impl Target for TreiberStack {
    fn name(&self) -> &'static str {
        "treiber-stack"
    }

    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
        // Role split (same shape as the mpsc-queue example): driver thread
        // 0 pops/peeks, every other driver thread pushes. The racy reads
        // in `pop` therefore only ever observe *other* threads' unflushed
        // publication CAS / payload — the planted bugs are strictly
        // inter-thread.
        if view.tid() == ThreadId(0) {
            match *op {
                Op::Get { .. } => self.peek(view),
                _ => self.pop(view),
            }
        } else {
            match *op {
                Op::Insert { key, value } | Op::Update { key, value } => {
                    self.push(view, encode(key, value))
                }
                Op::Incr { key, by } | Op::Decr { key, by } => self.push(view, encode(key, by)),
                Op::Delete { key } | Op::Get { key } => self.push(view, encode(key, 0)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fresh_session, recovery_session};
    use pmrace_pmem::Pool;

    #[test]
    fn push_pop_roundtrip_single_thread() {
        let session = fresh_session();
        let stack = TreiberStack::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for v in [11u64, 22, 33] {
            assert_eq!(stack.push(&view, v).unwrap(), OpResult::Done);
        }
        assert_eq!(stack.peek(&view).unwrap(), OpResult::Found(33));
        assert_eq!(stack.pop(&view).unwrap(), OpResult::Found(33));
        assert_eq!(stack.pop(&view).unwrap(), OpResult::Found(22));
        assert_eq!(stack.pop(&view).unwrap(), OpResult::Found(11));
        assert_eq!(stack.pop(&view).unwrap(), OpResult::Missing);
    }

    #[test]
    fn unflushed_top_means_pushes_roll_back_across_a_crash() {
        let session = fresh_session();
        let stack = TreiberStack::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for v in [7u64, 8, 9] {
            stack.push(&view, v).unwrap();
        }
        // The publication CAS never persists TOP: the crash image holds
        // the initial (persisted) empty top.
        let img = session.pool().crash_image().unwrap();
        let pool = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = recovery_session(pool);
        let rec = TreiberStack::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        assert!(
            rec.elements(&v2).unwrap().is_empty(),
            "lost pushes: bug 1's crash shape"
        );
    }

    #[test]
    fn recovery_truncates_dangling_top_and_rewinds_cursor() {
        let session = fresh_session();
        let stack = TreiberStack::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        stack.push(&view, 5).unwrap();
        // Persist a torn TOP pointing outside the arena.
        view.ntstore_u64(stack.root + TOP, 0xDEAD_0000u64, site!("tstack.test.tear"))
            .unwrap();
        let img = session.pool().crash_image().unwrap();
        let pool = Arc::new(Pool::from_crash_image(&img).unwrap());
        let s2 = recovery_session(pool);
        let rec = TreiberStack::recover(&s2).unwrap();
        let v2 = s2.view(ThreadId(0));
        assert!(rec.elements(&v2).unwrap().is_empty());
        // Post-recovery pushes work: the cursor was rewound, not wedged.
        assert_eq!(rec.push(&v2, 1).unwrap(), OpResult::Done);
    }
}

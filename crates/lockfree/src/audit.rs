//! Exactly-once recovery audit for the lock-free suite.
//!
//! The detectability contract every structure in this suite honors: after
//! a crash and recovery, each element the pre-crash execution durably
//! published is recovered **exactly once** — no lost elements, no
//! duplicated (resurrected) elements, nothing that was never inserted.
//! [`check_exactly_once`] is the multiset comparison the crash-image
//! tests (and external harnesses) run against a structure's
//! `elements(..)` walk; the planted bugs are precisely the shapes that
//! violate it when the crash lands inside their racy windows.

use std::collections::HashMap;
use std::fmt;

/// A violation of exactly-once recovery semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditError {
    /// An expected element is missing from the recovered structure
    /// (e.g. a push whose publication CAS was never flushed).
    Lost(u64),
    /// A recovered element appears more often than expected (e.g. a
    /// deletion whose mark was `clwb`'d but never fenced resurrects).
    Duplicated(u64),
    /// A recovered element was never expected at all (torn pointer walked
    /// into garbage).
    Unexpected(u64),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Lost(v) => write!(f, "lost element {v:#x} after recovery"),
            AuditError::Duplicated(v) => write!(f, "element {v:#x} recovered more than once"),
            AuditError::Unexpected(v) => write!(f, "recovered element {v:#x} was never inserted"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Multiset-compare the recovered elements against the expected ones.
///
/// Order-insensitive on purpose: a stack recovers LIFO, a queue FIFO,
/// a list in key order — exactly-once is about membership with
/// multiplicity, not traversal order.
///
/// # Errors
///
/// The first violation found, preferring [`AuditError::Unexpected`] /
/// [`AuditError::Duplicated`] (surplus) over [`AuditError::Lost`]
/// (deficit) so torn-walk garbage isn't masked by unrelated losses.
pub fn check_exactly_once(expected: &[u64], recovered: &[u64]) -> Result<(), AuditError> {
    let mut want: HashMap<u64, i64> = HashMap::new();
    for &v in expected {
        *want.entry(v).or_insert(0) += 1;
    }
    for &v in recovered {
        match want.get_mut(&v) {
            Some(n) if *n > 0 => *n -= 1,
            Some(_) => return Err(AuditError::Duplicated(v)),
            None => return Err(AuditError::Unexpected(v)),
        }
    }
    if let Some((&v, _)) = want.iter().find(|(_, &n)| n > 0) {
        return Err(AuditError::Lost(v));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use pmrace_pmem::{Pool, ThreadId};

    use super::*;
    use crate::testutil::{fresh_session, recovery_session};
    use crate::{list::HarrisList, queue::MsQueue, stack::TreiberStack};

    /// Crash image with *every* granule forced persistent — the
    /// no-crash-window baseline each structure must recover exactly.
    fn fully_persisted_image(pool: &Pool) -> pmrace_pmem::CrashImage {
        pool.crash_image_persisting(&[(0, pool.size())]).unwrap()
    }

    #[test]
    fn audit_flags_lost_duplicated_and_unexpected() {
        assert_eq!(check_exactly_once(&[1, 2, 3], &[3, 1, 2]), Ok(()));
        assert_eq!(check_exactly_once(&[1, 2], &[1]), Err(AuditError::Lost(2)));
        assert_eq!(
            check_exactly_once(&[1, 2], &[1, 2, 2]),
            Err(AuditError::Duplicated(2))
        );
        assert_eq!(
            check_exactly_once(&[1], &[1, 9]),
            Err(AuditError::Unexpected(9))
        );
        // Multiset, not set: duplicates in `expected` are honored.
        assert_eq!(check_exactly_once(&[5, 5], &[5, 5]), Ok(()));
        assert_eq!(check_exactly_once(&[5, 5], &[5]), Err(AuditError::Lost(5)));
    }

    #[test]
    fn stack_recovers_exactly_once_from_a_fully_persisted_image() {
        let session = fresh_session();
        let stack = TreiberStack::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for v in [10u64, 20, 30] {
            stack.push(&view, v).unwrap();
        }
        let img = fully_persisted_image(session.pool());
        let s2 = recovery_session(Arc::new(Pool::from_crash_image(&img).unwrap()));
        let rec = TreiberStack::recover(&s2).unwrap();
        let got = rec.elements(&s2.view(ThreadId(0))).unwrap();
        assert_eq!(check_exactly_once(&[10, 20, 30], &got), Ok(()));
    }

    #[test]
    fn stack_audit_detects_the_unflushed_publication() {
        let session = fresh_session();
        let stack = TreiberStack::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for v in [10u64, 20, 30] {
            stack.push(&view, v).unwrap();
        }
        // No forced persistence: the publication CASes are still dirty.
        let img = session.pool().crash_image().unwrap();
        let s2 = recovery_session(Arc::new(Pool::from_crash_image(&img).unwrap()));
        let rec = TreiberStack::recover(&s2).unwrap();
        let got = rec.elements(&s2.view(ThreadId(0))).unwrap();
        assert!(matches!(
            check_exactly_once(&[10, 20, 30], &got),
            Err(AuditError::Lost(_))
        ));
    }

    #[test]
    fn queue_recovers_exactly_once_from_a_fully_persisted_image() {
        let session = fresh_session();
        let q = MsQueue::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for v in [4u64, 5, 6] {
            q.enqueue(&view, v).unwrap();
        }
        let img = fully_persisted_image(session.pool());
        let s2 = recovery_session(Arc::new(Pool::from_crash_image(&img).unwrap()));
        let rec = MsQueue::recover(&s2).unwrap();
        let got = rec.elements(&s2.view(ThreadId(0))).unwrap();
        assert_eq!(check_exactly_once(&[4, 5, 6], &got), Ok(()));
    }

    #[test]
    fn queue_audit_detects_the_unflushed_link() {
        let session = fresh_session();
        let q = MsQueue::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for v in [4u64, 5, 6] {
            q.enqueue(&view, v).unwrap();
        }
        let img = session.pool().crash_image().unwrap();
        let s2 = recovery_session(Arc::new(Pool::from_crash_image(&img).unwrap()));
        let rec = MsQueue::recover(&s2).unwrap();
        let got = rec.elements(&s2.view(ThreadId(0))).unwrap();
        assert!(matches!(
            check_exactly_once(&[4, 5, 6], &got),
            Err(AuditError::Lost(_))
        ));
    }

    #[test]
    fn list_recovers_exactly_once_and_flags_the_unfenced_mark() {
        let session = fresh_session();
        let list = HarrisList::init(&session).unwrap();
        let view = session.view(ThreadId(0));
        for k in [1u64, 2, 3] {
            list.insert(&view, k, k + 100).unwrap();
        }
        // Fully persisted pre-delete state recovers exactly once.
        let img = fully_persisted_image(session.pool());
        let s2 = recovery_session(Arc::new(Pool::from_crash_image(&img).unwrap()));
        let rec = HarrisList::recover(&s2).unwrap();
        let keys: Vec<u64> = rec
            .elements(&s2.view(ThreadId(0)))
            .unwrap()
            .iter()
            .map(|e| e.0)
            .collect();
        assert_eq!(check_exactly_once(&[1, 2, 3], &keys), Ok(()));
        // Now delete on the *live* pool: the mark is clwb'd but never
        // fenced, so a plain crash image resurrects the victim while the
        // expected post-delete set no longer contains it.
        list.delete(&view, 2).unwrap();
        let img = session.pool().crash_image().unwrap();
        let s3 = recovery_session(Arc::new(Pool::from_crash_image(&img).unwrap()));
        let rec = HarrisList::recover(&s3).unwrap();
        let keys: Vec<u64> = rec
            .elements(&s3.view(ThreadId(0)))
            .unwrap()
            .iter()
            .map(|e| e.0)
            .collect();
        assert_eq!(
            check_exactly_once(&[1, 3], &keys),
            Err(AuditError::Unexpected(2)),
            "the durably-logged deletion came back: bug 1's crash shape"
        );
    }
}

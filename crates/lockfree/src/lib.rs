//! Lock-free persistent data-structure target suite.
//!
//! Three classic lock-free structures rebuilt on persistent memory and
//! written directly against the instrumented CAS
//! ([`PmView::cas_u64`](pmrace_runtime::PmView::cas_u64)), each seeded
//! with realistic inter-thread PM inconsistencies in the publication
//! path — the bug shapes PMRace's CAS-retry-aware scheduling is built to
//! expose:
//!
//! | module | structure | planted bugs |
//! |---|---|---|
//! | [`stack`] | Treiber stack | unflushed CAS-published top; unflushed payload behind a durable link |
//! | [`list`] | Harris-style sorted list | `clwb` without `sfence` on the deletion mark (helping path logs it); unflushed payload |
//! | [`queue`] | Michael–Scott queue | unflushed linking CAS (helping producer logs the repair); unflushed payload |
//!
//! Every structure allocates nodes from a bounded CAS-advanced arena,
//! bounds its optimistic retry loops (failed [`cas_u64`] attempts are the
//! scheduler's retry decision points), and implements `recover` the way a
//! restart path would: rebuild structural invariants from what actually
//! persisted, *without* touching the durable log cells the planted bugs
//! taint. The [`audit`] module states the detectability contract those
//! recoveries are tested against: every durably published element comes
//! back exactly once.
//!
//! Like the built-ins, the suite reaches the process-global registry
//! through an idempotent, race-safe entry point: [`register_lockfree`].
//!
//! [`cas_u64`]: pmrace_runtime::PmView::cas_u64

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod list;
pub mod queue;
pub mod stack;
#[cfg(test)]
mod testutil;

pub use pmrace_api::{Op, OpResult, Target, TargetSpec};

/// Specs of the three lock-free structures, in table order.
fn suite_specs() -> [TargetSpec; 3] {
    [stack::SPEC, list::SPEC, queue::SPEC]
}

/// Register the lock-free suite with the process-global target registry.
/// Idempotent and thread-safe (concurrent first calls from racing fleet
/// workers are fine); repeat calls are free.
pub fn register_lockfree() {
    for spec in suite_specs() {
        pmrace_api::ensure_registered(spec)
            .expect("lock-free target names are unique across suites");
    }
}

/// Specs of the three lock-free structures, in table order. Implicitly
/// ensures the suite is registered.
#[must_use]
pub fn lockfree_specs() -> Vec<TargetSpec> {
    register_lockfree();
    suite_specs().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_registers_idempotently_and_resolves_by_name() {
        register_lockfree();
        register_lockfree();
        let names: Vec<&str> = lockfree_specs().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["treiber-stack", "harris-list", "ms-queue"]);
        for name in names {
            assert!(
                pmrace_api::resolve_target(name).is_some(),
                "{name} must resolve from the global registry"
            );
        }
    }

    #[test]
    fn suite_grammars_differ_from_the_default() {
        for spec in lockfree_specs() {
            assert_ne!(
                spec.hints,
                pmrace_api::SeedHints::DEFAULT,
                "{} ships its own grammar",
                spec.name
            );
        }
    }
}

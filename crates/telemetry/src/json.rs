//! Minimal JSON support: escaping for the writers and a small
//! recursive-descent parser for the schema validator and `repro stats`.
//!
//! The workspace is fully offline (no serde); like `pmrace-replay`, this
//! crate hand-rolls the tiny subset of JSON it needs. The parser accepts
//! standard JSON (objects, arrays, strings with escapes, integers/floats,
//! booleans, null) and is only ever pointed at files this crate itself
//! wrote.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub(crate) fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        crate::jsonstr::unescape(self.bytes, &mut self.pos)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub(crate) fn push_str_escaped(out: &mut String, s: &str) {
    crate::jsonstr::escape_into(out, s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Value::parse(r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": 2.5, "e": -3}}"#)
            .unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("c").unwrap().get("e"), Some(&Value::Num(-3.0)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} trailing").is_err());
    }

    #[test]
    fn escape_roundtrip() {
        let mut out = String::new();
        push_str_escaped(&mut out, "a\"b\\c\nd\u{1}");
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}

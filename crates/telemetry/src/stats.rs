//! Offline rendering of telemetry artifacts: the `repro stats` command.
//!
//! Consumes the files the fuzzer emits — `telemetry.json` snapshots and
//! `trace.jsonl` span traces — and renders a per-phase time breakdown,
//! derived rates (alternations fired per plan, campaign throughput), histogram
//! summaries and the top-N hottest instrumentation sites.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::json::Value;

/// Render a duration given in microseconds with an adaptive unit.
#[must_use]
pub fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1}s", us as f64 / 1e6)
    } else if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", part as f64 * 100.0 / whole as f64)
    }
}

/// `part` as a multiple of `whole` — for rates that legitimately exceed
/// 1 (a plan is reused across campaigns, so it can fire more than once).
fn ratio(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.2}x", part as f64 / whole as f64)
    }
}

/// Expand each input path: a directory contributes its `telemetry.json`
/// and/or `trace.jsonl`; a file contributes itself.
///
/// # Errors
///
/// Fails for paths that do not exist, and for directories containing
/// neither artifact.
pub fn resolve_inputs(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut found = false;
            for name in ["telemetry.json", "trace.jsonl"] {
                let f = p.join(name);
                if f.is_file() {
                    out.push(f);
                    found = true;
                }
            }
            if !found {
                return Err(format!(
                    "{}: no telemetry.json or trace.jsonl inside",
                    p.display()
                ));
            }
        } else if p.is_file() {
            out.push(p.clone());
        } else {
            return Err(format!("{}: no such file or directory", p.display()));
        }
    }
    Ok(out)
}

/// Render the stats report for a set of telemetry artifacts (snapshot
/// `.json` and/or trace `.jsonl` files or directories holding them).
/// `top` bounds the hottest-sites table.
///
/// # Errors
///
/// Fails when a file cannot be read or parsed.
pub fn render_stats(paths: &[PathBuf], top: usize) -> Result<String, String> {
    let files = resolve_inputs(paths)?;
    let mut out = String::new();
    for f in &files {
        let text = fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?;
        let section = if f.extension().is_some_and(|e| e == "jsonl") {
            render_trace(f, &text)?
        } else {
            render_snapshot(f, &text, top)?
        };
        out.push_str(&section);
        out.push('\n');
    }
    Ok(out)
}

fn phase_table(
    out: &mut String,
    rows: &[(String, u64, u64)], // (name, count, total_us)
    wall_us: u64,
) {
    let _ = writeln!(
        out,
        "  {:<20} {:>8} {:>10} {:>10} {:>8}",
        "phase", "count", "total", "mean", "of wall"
    );
    let mut sorted: Vec<&(String, u64, u64)> = rows.iter().filter(|(_, c, _)| *c > 0).collect();
    sorted.sort_by_key(|row| std::cmp::Reverse(row.2));
    for (name, count, total_us) in sorted {
        let _ = writeln!(
            out,
            "  {:<20} {:>8} {:>10} {:>10} {:>8}",
            name,
            count,
            fmt_us(*total_us),
            fmt_us(total_us / count.max(&1)),
            pct(*total_us, wall_us)
        );
    }
    let idle: u64 = wall_us.saturating_sub(rows.iter().map(|(_, _, t)| t).sum());
    let _ = writeln!(
        out,
        "  {:<20} {:>8} {:>10} {:>10} {:>8}   (wall {})",
        "(untraced)",
        "",
        fmt_us(idle),
        "",
        pct(idle, wall_us),
        fmt_us(wall_us)
    );
}

fn get_u64(doc: &Value, field: &str, key: &str) -> u64 {
    doc.get(field)
        .and_then(|m| m.get(key))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn render_snapshot(path: &Path, text: &str, top: usize) -> Result<String, String> {
    crate::snapshot::validate_snapshot_text(text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Value::parse(text).map_err(|e| format!("{}: {e}", path.display()))?;
    let wall_us = doc.get("elapsed_us").and_then(Value::as_u64).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "== snapshot: {} ==", path.display());
    let _ = writeln!(
        out,
        "  elapsed {} (telemetry {})",
        fmt_us(wall_us),
        if doc.get("enabled").and_then(Value::as_bool) == Some(true) {
            "enabled"
        } else {
            "disabled"
        }
    );

    out.push_str("\n-- phase breakdown (total is summed across threads) --\n");
    let phases: Vec<(String, u64, u64)> = doc
        .get("phases")
        .and_then(Value::as_obj)
        .unwrap_or(&[])
        .iter()
        .map(|(name, p)| {
            (
                name.clone(),
                p.get("count").and_then(Value::as_u64).unwrap_or(0),
                p.get("total_us").and_then(Value::as_u64).unwrap_or(0),
            )
        })
        .collect();
    phase_table(&mut out, &phases, wall_us);

    out.push_str("\n-- campaign counters --\n");
    let campaigns = get_u64(&doc, "counters", "exec.campaigns");
    let _ = writeln!(
        out,
        "  campaigns {campaigns} ({}/s)  hangs {}  op-errors {}",
        if wall_us > 0 {
            format!("{:.1}", campaigns as f64 / (wall_us as f64 / 1e6))
        } else {
            "-".to_string()
        },
        get_u64(&doc, "counters", "exec.hangs"),
        get_u64(&doc, "counters", "exec.op_errors"),
    );
    let planned = get_u64(&doc, "counters", "plan.planned");
    let fired = get_u64(&doc, "counters", "plan.alternations_fired");
    let _ = writeln!(
        out,
        "  plans {planned} planned, {fired} alternations fired ({} per plan), \
         {} waits, {} skips consumed, {} sync-disables, {} privileged drafts",
        ratio(fired, planned),
        get_u64(&doc, "counters", "plan.waits"),
        get_u64(&doc, "counters", "plan.skips_consumed"),
        get_u64(&doc, "counters", "plan.sync_disabled"),
        get_u64(&doc, "counters", "plan.privileged_drafts"),
    );
    let loads = get_u64(&doc, "counters", "pm.loads");
    let stores = get_u64(&doc, "counters", "pm.stores");
    let nt = get_u64(&doc, "counters", "pm.ntstores");
    let cas = get_u64(&doc, "counters", "pm.cas");
    let flushes = get_u64(&doc, "counters", "pm.flushes");
    let fences = get_u64(&doc, "counters", "pm.fences");
    let total_pm = loads + stores + nt + cas + flushes + fences;
    let _ = writeln!(
        out,
        "  pm mix: {loads} loads ({}), {stores} stores ({}), {nt} ntstores, \
         {cas} cas, {flushes} flushes, {fences} fences, {} evictions",
        pct(loads, total_pm),
        pct(stores, total_pm),
        get_u64(&doc, "counters", "pm.evictions"),
    );
    let _ = writeln!(
        out,
        "  checker: {} inter / {} intra candidates, {} inconsistencies \
         ({} whitelisted), {} sync updates",
        get_u64(&doc, "counters", "checker.candidates_inter"),
        get_u64(&doc, "counters", "checker.candidates_intra"),
        get_u64(&doc, "counters", "checker.inconsistencies"),
        get_u64(&doc, "counters", "checker.whitelisted"),
        get_u64(&doc, "counters", "checker.sync_updates"),
    );
    let _ = writeln!(
        out,
        "  validation: {} runs -> {} bugs, {} fps, {} whitelisted fps, {} unvalidated",
        get_u64(&doc, "counters", "validate.runs"),
        get_u64(&doc, "counters", "validate.bugs"),
        get_u64(&doc, "counters", "validate.fps"),
        get_u64(&doc, "counters", "validate.whitelisted_fps"),
        get_u64(&doc, "counters", "validate.unvalidated"),
    );
    let restores = get_u64(&doc, "counters", "checkpoint.restores");
    let hits = get_u64(&doc, "counters", "checkpoint.cache_hits");
    let _ = writeln!(
        out,
        "  checkpoints: {} created, {restores} restored ({} cache hits, {})",
        get_u64(&doc, "counters", "checkpoint.creates"),
        hits,
        pct(hits, restores),
    );
    let attempts = get_u64(&doc, "counters", "replay.attempts");
    if attempts > 0 {
        let _ = writeln!(
            out,
            "  replay: {attempts} attempts, {} matched, {} divergences",
            get_u64(&doc, "counters", "replay.matches"),
            get_u64(&doc, "counters", "replay.divergences"),
        );
    }

    let hists = doc.get("histograms").and_then(Value::as_obj).unwrap_or(&[]);
    let any_hist = hists
        .iter()
        .any(|(_, h)| h.get("count").and_then(Value::as_u64).unwrap_or(0) > 0);
    if any_hist {
        out.push_str("\n-- latency histograms --\n");
        for (name, h) in hists {
            let count = h.get("count").and_then(Value::as_u64).unwrap_or(0);
            if count == 0 {
                continue;
            }
            let sum = h.get("sum").and_then(Value::as_u64).unwrap_or(0);
            let buckets = h.get("buckets").and_then(Value::as_arr).unwrap_or(&[]);
            let p99_bound = percentile_bound(buckets, count, 0.99);
            let _ = writeln!(
                out,
                "  {:<16} count {:>10}  mean {:>9}  p99 < {}",
                name,
                count,
                fmt_ns(sum / count.max(1)),
                fmt_ns(p99_bound),
            );
        }
    }

    let sites = doc.get("top_sites").and_then(Value::as_arr).unwrap_or(&[]);
    if !sites.is_empty() {
        let _ = writeln!(out, "\n-- hottest sites (top {top}) --");
        for s in sites.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:>12}  {}",
                s.get("accesses").and_then(Value::as_u64).unwrap_or(0),
                s.get("site").and_then(Value::as_str).unwrap_or("?"),
            );
        }
    }
    Ok(out)
}

/// Upper bound (exclusive) of the bucket containing the `q`-quantile.
fn percentile_bound(buckets: &[Value], count: u64, q: f64) -> u64 {
    let target = (count as f64 * q).ceil() as u64;
    let mut seen = 0u64;
    for b in buckets {
        if let Some(pair) = b.as_arr() {
            if pair.len() == 2 {
                seen += pair[1].as_u64().unwrap_or(0);
                if seen >= target {
                    let lb = pair[0].as_u64().unwrap_or(0);
                    return 1u64 << (lb + 1).min(63);
                }
            }
        }
    }
    0
}

fn render_trace(path: &Path, text: &str) -> Result<String, String> {
    let mut per_phase: Vec<(String, u64, u64)> = Vec::new();
    let mut min_start = u64::MAX;
    let mut max_end = 0u64;
    let mut dropped = 0u64;
    let mut threads = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        match v.get("type").and_then(Value::as_str) {
            Some("meta") => {
                dropped = v.get("dropped").and_then(Value::as_u64).unwrap_or(0);
            }
            Some("span") => {
                let phase = v
                    .get("phase")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string();
                let start = v.get("start_us").and_then(Value::as_u64).unwrap_or(0);
                let dur = v.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
                threads.insert(v.get("thread").and_then(Value::as_u64).unwrap_or(0));
                min_start = min_start.min(start);
                max_end = max_end.max(start + dur);
                match per_phase.iter_mut().find(|(n, _, _)| *n == phase) {
                    Some(row) => {
                        row.1 += 1;
                        row.2 += dur;
                    }
                    None => per_phase.push((phase, 1, dur)),
                }
            }
            _ => return Err(format!("{}:{}: unknown line type", path.display(), i + 1)),
        }
    }
    let wall = max_end.saturating_sub(if min_start == u64::MAX { 0 } else { min_start });
    let mut out = String::new();
    let _ = writeln!(out, "== trace: {} ==", path.display());
    let _ = writeln!(
        out,
        "  {} spans on {} threads over {} ({} dropped by ring wrap)",
        per_phase.iter().map(|(_, c, _)| c).sum::<u64>(),
        threads.len(),
        fmt_us(wall),
        dropped
    );
    out.push_str("\n-- phase breakdown (buffered spans only) --\n");
    phase_table(&mut out, &per_phase, wall);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{add, record, site_access, Counter, Histogram};
    use crate::tests::lock_registry;
    use crate::trace::{span, Phase};

    #[test]
    fn renders_snapshot_and_trace_end_to_end() {
        let _g = lock_registry();
        crate::set_enabled(true);
        crate::reset();
        add(Counter::ExecCampaigns, 4);
        add(Counter::PlanPlanned, 10);
        add(Counter::PlanAlternationsFired, 7);
        record(Histogram::PmFlushNs, 900);
        site_access(2);
        {
            let _s = span(Phase::Execution);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::set_enabled(false);
        let dir = std::env::temp_dir().join("pmrace-telemetry-test-stats");
        let _ = fs::remove_dir_all(&dir);
        crate::snapshot::write_snapshot(&dir, &|_| None).unwrap();
        crate::snapshot::write_trace_jsonl(&dir).unwrap();
        let report = render_stats(std::slice::from_ref(&dir), 5).unwrap();
        assert!(report.contains("phase breakdown"));
        assert!(report.contains("execution"));
        assert!(report.contains("0.70x per plan"));
        assert!(report.contains("hottest sites"));
        assert!(report.contains("trace:"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_inputs_rejects_empty_dir() {
        let dir = std::env::temp_dir().join("pmrace-telemetry-test-empty");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert!(resolve_inputs(std::slice::from_ref(&dir)).is_err());
        assert!(resolve_inputs(&[dir.join("nope.json")]).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_us(12), "12us");
        assert_eq!(fmt_us(1_500), "1.5ms");
        assert_eq!(fmt_us(2_500_000), "2.50s");
        assert_eq!(fmt_us(42_000_000), "42.0s");
    }
}

//! Structured span tracing for campaign phases.
//!
//! A [`Phase`] is a static id for one kind of work the fuzzer does (seed
//! generation, campaign execution, post-failure validation, ...). Scopes
//! are opened with [`span`], which returns an RAII guard; dropping the
//! guard records the span.
//!
//! Two sinks receive every span:
//!
//! - **Cumulative phase totals** — sharded `(count, total_ns)` atomics per
//!   phase. These always survive, no matter how many spans fire, and are
//!   what `telemetry.json` reports as per-phase time.
//! - **Per-thread ring buffers** — the most recent [`RING_CAP`] span events
//!   per thread, drained to JSONL by [`crate::snapshot::write_trace_jsonl`]
//!   for offline profiling (`repro stats`). When a ring wraps, the oldest
//!   event is dropped and `trace.spans_dropped` counts it; the cumulative
//!   totals are unaffected.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::metrics::{add, Counter};
use crate::{enabled, epoch, shard, thread_idx, SHARDS};

macro_rules! phases {
    ($($variant:ident => $name:literal),+ $(,)?) => {
        /// A campaign phase — the static id attached to every span.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Phase {
            $(#[doc = concat!("Catalog name: `", $name, "`.")] $variant,)+
        }

        impl Phase {
            /// Every phase, in registry order (index == discriminant).
            pub const ALL: &'static [Phase] = &[$(Phase::$variant),+];

            /// Catalog name, exactly as emitted in `telemetry.json` and
            /// trace JSONL.
            #[must_use]
            pub const fn name(self) -> &'static str {
                match self { $(Phase::$variant => $name),+ }
            }
        }
    };
}

phases! {
    SeedGen => "seed_gen",
    Execution => "execution",
    Validation => "validation",
    CheckpointCreate => "checkpoint_create",
    CheckpointRestore => "checkpoint_restore",
    RecordCapture => "record_capture",
    ReplayRecon => "replay_recon",
    ReplayAttempt => "replay_attempt",
    ReportEmit => "report_emit",
}

const N_PHASES: usize = Phase::ALL.len();

/// Per-thread span ring capacity. Beyond this the oldest events are
/// discarded (counted in `trace.spans_dropped`); cumulative phase totals
/// are kept regardless.
pub const RING_CAP: usize = 8192;

#[repr(align(128))]
struct PhaseRow {
    count: [AtomicU64; N_PHASES],
    total_ns: [AtomicU64; N_PHASES],
}

impl PhaseRow {
    const fn new() -> Self {
        Self {
            count: [const { AtomicU64::new(0) }; N_PHASES],
            total_ns: [const { AtomicU64::new(0) }; N_PHASES],
        }
    }
}

static PHASE_TOTALS: [PhaseRow; SHARDS] = [const { PhaseRow::new() }; SHARDS];

/// One completed span, as drained from the ring buffers.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// Which phase the span measured.
    pub phase: Phase,
    /// Dense telemetry thread index of the thread that ran it.
    pub thread: u64,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
}

#[derive(Default)]
struct Ring {
    events: Mutex<VecDeque<SpanEvent>>,
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
    &RINGS
}

fn lock<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static MY_RING: Arc<Ring> = {
        let ring = Arc::new(Ring::default());
        lock(rings()).push(Arc::clone(&ring));
        ring
    };
}

/// RAII guard for an open span; records on drop. Obtain via [`span`].
#[must_use = "a span records when the guard drops; binding to _ drops immediately"]
pub struct SpanGuard {
    phase: Phase,
    start: Instant,
}

/// Open a span for `phase`. Returns `None` (and does nothing else) when
/// telemetry is disabled — bind the result to a `_span` local so the guard
/// lives to the end of the scope either way.
#[inline]
pub fn span(phase: Phase) -> Option<SpanGuard> {
    enabled().then(|| SpanGuard {
        phase,
        start: Instant::now(),
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        let row = &PHASE_TOTALS[shard()];
        row.count[self.phase as usize].fetch_add(1, Ordering::Relaxed);
        row.total_ns[self.phase as usize].fetch_add(
            u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        let event = SpanEvent {
            phase: self.phase,
            thread: thread_idx() as u64,
            start_us: u64::try_from(self.start.saturating_duration_since(epoch()).as_micros())
                .unwrap_or(u64::MAX),
            dur_us: u64::try_from(dur.as_micros()).unwrap_or(u64::MAX),
        };
        MY_RING.with(|ring| {
            let mut events = lock(&ring.events);
            if events.len() == RING_CAP {
                events.pop_front();
                add(Counter::TraceSpansDropped, 1);
            }
            events.push_back(event);
        });
    }
}

/// Cumulative totals per phase: `(phase, span_count, total_ns)`, summed
/// over all shards, in [`Phase::ALL`] order.
#[must_use]
pub fn phase_totals() -> Vec<(Phase, u64, u64)> {
    Phase::ALL
        .iter()
        .map(|&p| {
            let (mut count, mut ns) = (0u64, 0u64);
            for row in &PHASE_TOTALS {
                count += row.count[p as usize].load(Ordering::Relaxed);
                ns += row.total_ns[p as usize].load(Ordering::Relaxed);
            }
            (p, count, ns)
        })
        .collect()
}

/// Drain every thread's ring buffer, returning all buffered span events
/// sorted by start time. Draining empties the rings.
#[must_use]
pub fn drain_events() -> Vec<SpanEvent> {
    let mut out = Vec::new();
    for ring in lock(rings()).iter() {
        out.append(&mut lock(&ring.events).drain(..).collect());
    }
    out.sort_by_key(|e| (e.start_us, e.thread));
    out
}

/// Zero phase totals and discard buffered events. Called from
/// [`crate::reset`].
pub(crate) fn reset_trace() {
    for row in &PHASE_TOTALS {
        for c in &row.count {
            c.store(0, Ordering::Relaxed);
        }
        for t in &row.total_ns {
            t.store(0, Ordering::Relaxed);
        }
    }
    for ring in lock(rings()).iter() {
        lock(&ring.events).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock_registry;

    #[test]
    fn disabled_span_is_none() {
        let _g = lock_registry();
        crate::set_enabled(false);
        assert!(span(Phase::Execution).is_none());
    }

    #[test]
    fn spans_accumulate_totals_and_events() {
        let _g = lock_registry();
        crate::set_enabled(true);
        crate::reset();
        for _ in 0..3 {
            let _span = span(Phase::SeedGen);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        crate::set_enabled(false);
        let totals = phase_totals();
        let (_, count, ns) = totals[Phase::SeedGen as usize];
        assert_eq!(count, 3);
        assert!(ns >= 3 * 2_000_000, "slept >= 2ms per span, got {ns}ns");
        let events = drain_events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].start_us <= w[1].start_us));
        // Drained means drained.
        assert!(drain_events().is_empty());
    }

    #[test]
    fn ring_wrap_drops_oldest_but_keeps_totals() {
        let _g = lock_registry();
        crate::set_enabled(true);
        crate::reset();
        let n = RING_CAP + 10;
        for _ in 0..n {
            let _span = span(Phase::Validation);
        }
        crate::set_enabled(false);
        let (_, count, _) = phase_totals()[Phase::Validation as usize];
        assert_eq!(count, n as u64);
        assert_eq!(drain_events().len(), RING_CAP);
        assert_eq!(
            crate::metrics::counter(crate::metrics::Counter::TraceSpansDropped),
            10
        );
    }
}

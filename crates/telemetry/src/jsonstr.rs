//! JSON string-literal escaping and unescaping, shared by every
//! hand-rolled JSON writer/parser in the workspace.
//!
//! The workspace is fully offline (no serde), so both `pmrace-replay`
//! (repro artifacts) and this crate (telemetry snapshots) hand-roll the
//! tiny JSON subset they need. The string-literal rules are the one part
//! that is easy to get subtly wrong twice, so they live here once; the
//! public `pmrace-api` crate re-exports this module as `pmrace_api::json`
//! for out-of-tree tooling.
//!
//! Writers escape `"`, `\`, `\n`, `\r`, `\t` and all other control
//! characters (as `\uXXXX`); the reader additionally accepts the standard
//! `\/`, `\b`, `\f` and `\uXXXX` escapes so any conforming document parses
//! back.

use std::fmt::Write as _;

/// Append `s` to `out` as a quoted JSON string literal.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a quoted JSON string literal from `bytes` starting at `*pos`
/// (which must point at the opening `"`), advancing `*pos` past the
/// closing quote.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error
/// (missing opening quote, unterminated literal, bad escape).
pub fn unescape(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        // The writers only escape control characters; no
                        // surrogate pairs to handle.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8".to_owned())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> String {
        let mut lit = String::new();
        escape_into(&mut lit, s);
        let mut pos = 0;
        let back = unescape(lit.as_bytes(), &mut pos).unwrap();
        assert_eq!(pos, lit.len(), "literal fully consumed");
        back
    }

    #[test]
    fn escapes_roundtrip() {
        for s in [
            "",
            "plain",
            "a\"b\\c\nd\re\tf",
            "control \u{1}\u{1f} bytes",
            "unicode é ☃ 𝄞",
        ] {
            assert_eq!(roundtrip(s), s);
        }
    }

    #[test]
    fn accepts_foreign_escapes() {
        let mut pos = 0;
        let s = unescape(br#""a\/b\u0041\b\f""#, &mut pos).unwrap();
        assert_eq!(s, "a/bA\u{8}\u{c}");
    }

    #[test]
    fn rejects_malformed_literals() {
        for bad in [
            &b"no quote"[..],
            b"\"unterminated",
            b"\"bad \\q\"",
            b"\"\\u00",
        ] {
            let mut pos = 0;
            assert!(unescape(bad, &mut pos).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn position_advances_past_the_literal_only() {
        let doc = br#"{"k": "v"}"#;
        let mut pos = 1;
        assert_eq!(unescape(doc, &mut pos).unwrap(), "k");
        assert_eq!(pos, 4);
    }
}

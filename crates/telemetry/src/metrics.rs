//! Lock-free metrics registry: enum-keyed counters, gauges and log2
//! histograms, plus the per-site access-heat table.
//!
//! Counters and histograms are sharded: each thread writes only the row
//! selected by its dense thread index, and rows are cache-line aligned so
//! concurrent driver threads never contend on the same line. Gauges are
//! single atomics (sets are rare, last-write-wins). All writes are relaxed;
//! snapshot reads sum the shards, which is exact once writers are quiescent
//! and monotonically approximate while they run.
//!
//! Every metric is declared here, once, with its catalog name — the same
//! name that appears in `telemetry.json` and in `docs/OBSERVABILITY.md`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{enabled, shard, SHARDS};

macro_rules! metric_enum {
    ($(#[$outer:meta])* $enum_name:ident : $($variant:ident => $name:literal),+ $(,)?) => {
        $(#[$outer])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $enum_name {
            $(#[doc = concat!("Catalog name: `", $name, "`.")] $variant,)+
        }

        impl $enum_name {
            /// Every variant, in registry order (index == discriminant).
            pub const ALL: &'static [$enum_name] = &[$($enum_name::$variant),+];

            /// Dotted catalog name, exactly as emitted in `telemetry.json`.
            #[must_use]
            pub const fn name(self) -> &'static str {
                match self { $($enum_name::$variant => $name),+ }
            }
        }
    };
}

metric_enum! {
    /// Monotonic event counters. See `docs/OBSERVABILITY.md` for the unit
    /// and emission site of each.
    Counter :
    ExecCampaigns => "exec.campaigns",
    ExecHangs => "exec.hangs",
    ExecOpErrors => "exec.op_errors",
    SeedGenerated => "seed.generated",
    SeedEvolved => "seed.evolved",
    SeedPopulated => "seed.populated",
    CorpusSaved => "corpus.seeds_saved",
    CorpusSaveErrors => "corpus.save_errors",
    PmLoads => "pm.loads",
    PmStores => "pm.stores",
    PmNtStores => "pm.ntstores",
    PmCas => "pm.cas",
    PmFlushes => "pm.flushes",
    PmFences => "pm.fences",
    PmEvictions => "pm.evictions",
    PlanPlanned => "plan.planned",
    PlanWaits => "plan.waits",
    PlanAlternationsFired => "plan.alternations_fired",
    PlanSkipsConsumed => "plan.skips_consumed",
    PlanSyncDisabled => "plan.sync_disabled",
    PlanPrivilegedDrafts => "plan.privileged_drafts",
    CheckerCandidatesInter => "checker.candidates_inter",
    CheckerCandidatesIntra => "checker.candidates_intra",
    CheckerInconsistencies => "checker.inconsistencies",
    CheckerWhitelisted => "checker.whitelisted",
    CheckerSyncUpdates => "checker.sync_updates",
    ValidateRuns => "validate.runs",
    ValidateBugs => "validate.bugs",
    ValidateFps => "validate.fps",
    ValidateWhitelistedFps => "validate.whitelisted_fps",
    ValidateUnvalidated => "validate.unvalidated",
    ValidateCacheHit => "validate.cache_hit",
    ValidateCacheMiss => "validate.cache_miss",
    CheckpointCreates => "checkpoint.creates",
    CheckpointRestores => "checkpoint.restores",
    CheckpointCacheHits => "checkpoint.cache_hits",
    FleetSteals => "fleet.steals",
    FleetSharedSeeds => "fleet.shared_seeds",
    FleetFrontierHits => "fleet.frontier_hits",
    PipelineDeferred => "pipeline.deferred",
    PipelineInline => "pipeline.inline",
    PipelineBackpressure => "pipeline.backpressure",
    RecordCaptures => "record.captures",
    ReplayAttempts => "replay.attempts",
    ReplayMatches => "replay.matches",
    ReplayDivergences => "replay.divergences",
    TraceSpansDropped => "trace.spans_dropped",
    SiteHeatDropped => "trace.sites_dropped",
}

metric_enum! {
    /// Last-write-wins level gauges.
    Gauge :
    CovAliasPairs => "cov.alias_pairs",
    CovBranches => "cov.branches",
    FuzzWorkers => "fuzz.workers",
    QueueDepth => "plan.queue_depth",
    ValidateQueueDepth => "validate.queue_depth",
}

metric_enum! {
    /// Log2-bucketed value distributions. The `*_ns` histograms hold
    /// nanoseconds; `restore.dirty_lines` holds cache-line counts and
    /// `crash_image.overlay_bytes` holds byte counts.
    Histogram :
    PmFlushNs => "pm.flush_ns",
    PmFenceNs => "pm.fence_ns",
    CampaignNs => "exec.campaign_ns",
    RestoreDirtyLines => "restore.dirty_lines",
    CrashImageOverlayBytes => "crash_image.overlay_bytes",
    PipelineQueueNs => "pipeline.queue_ns",
}

const N_COUNTERS: usize = Counter::ALL.len();
const N_GAUGES: usize = Gauge::ALL.len();
const N_HISTS: usize = Histogram::ALL.len();

/// Number of buckets per histogram: bucket `b` counts values `v` with
/// `floor(log2(max(v,1))) == b`, the last bucket absorbing everything
/// larger (2^39 ns ≈ 9 minutes, far beyond any single flush or campaign
/// we time).
pub const HIST_BUCKETS: usize = 40;

/// Capacity of the direct-mapped site-heat table. Runtime site ids are
/// dense interner indices starting at 0; ids beyond the table bump
/// `trace.sites_dropped` instead of aliasing.
pub const SITE_SLOTS: usize = 4096;

/// Capacity of the per-worker campaign-execution table. Worker indices
/// past the table saturate into the last slot (the fleet cap is far below
/// this; the paper ran 13 workers).
pub const WORKER_SLOTS: usize = 64;

/// One shard's worth of counter cells, padded to its own cache line pair.
#[repr(align(128))]
struct Row<const N: usize> {
    cells: [AtomicU64; N],
}

impl<const N: usize> Row<N> {
    const fn new() -> Self {
        Self {
            cells: [const { AtomicU64::new(0) }; N],
        }
    }

    fn zero(&self) {
        for c in &self.cells {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[repr(align(128))]
struct HistShard {
    buckets: [[AtomicU64; HIST_BUCKETS]; N_HISTS],
    sums: [AtomicU64; N_HISTS],
}

impl HistShard {
    const fn new() -> Self {
        Self {
            buckets: [const { [const { AtomicU64::new(0) }; HIST_BUCKETS] }; N_HISTS],
            sums: [const { AtomicU64::new(0) }; N_HISTS],
        }
    }
}

static COUNTERS: [Row<N_COUNTERS>; SHARDS] = [const { Row::new() }; SHARDS];
static GAUGES: [AtomicU64; N_GAUGES] = [const { AtomicU64::new(0) }; N_GAUGES];
static HISTS: [HistShard; SHARDS] = [const { HistShard::new() }; SHARDS];
static SITE_HEAT: [AtomicU64; SITE_SLOTS] = [const { AtomicU64::new(0) }; SITE_SLOTS];
static WORKER_EXECS: [AtomicU64; WORKER_SLOTS] = [const { AtomicU64::new(0) }; WORKER_SLOTS];

/// Add `n` to a counter. No-op (one relaxed load, one branch) when
/// telemetry is disabled.
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() {
        return;
    }
    COUNTERS[shard()].cells[c as usize].fetch_add(n, Ordering::Relaxed);
}

/// Current value of a counter: the sum over all shards.
#[must_use]
pub fn counter(c: Counter) -> u64 {
    COUNTERS
        .iter()
        .map(|row| row.cells[c as usize].load(Ordering::Relaxed))
        .sum()
}

/// Set a gauge to `v` (last write wins). No-op when disabled.
#[inline]
pub fn gauge_set(g: Gauge, v: u64) {
    if !enabled() {
        return;
    }
    GAUGES[g as usize].store(v, Ordering::Relaxed);
}

/// Current value of a gauge.
#[must_use]
pub fn gauge(g: Gauge) -> u64 {
    GAUGES[g as usize].load(Ordering::Relaxed)
}

fn bucket_of(v: u64) -> usize {
    if v < 2 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Record one value into a histogram. No-op when disabled.
#[inline]
pub fn record(h: Histogram, v: u64) {
    if !enabled() {
        return;
    }
    let s = &HISTS[shard()];
    s.buckets[h as usize][bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    s.sums[h as usize].fetch_add(v, Ordering::Relaxed);
}

/// Record a duration into a histogram, in nanoseconds.
#[inline]
pub fn record_duration(h: Histogram, d: std::time::Duration) {
    record(h, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

/// Histogram read-out: `(count, sum, non-empty buckets)` where each bucket
/// is `(log2_lower_bound, count)` — i.e. bucket `(b, n)` holds `n` values
/// in `[2^b, 2^(b+1))` (bucket 0 also holds zeros).
#[must_use]
pub fn histogram(h: Histogram) -> (u64, u64, Vec<(u32, u64)>) {
    let mut buckets = [0u64; HIST_BUCKETS];
    let mut sum = 0u64;
    for s in &HISTS {
        for (b, cell) in s.buckets[h as usize].iter().enumerate() {
            buckets[b] += cell.load(Ordering::Relaxed);
        }
        sum += s.sums[h as usize].load(Ordering::Relaxed);
    }
    let count = buckets.iter().sum();
    let nonzero = buckets
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(b, n)| (b as u32, *n))
        .collect();
    (count, sum, nonzero)
}

/// Count one access at instrumentation site `site` (a dense runtime site
/// id). Ids past [`SITE_SLOTS`] bump `trace.sites_dropped` instead.
/// No-op when disabled.
#[inline]
pub fn site_access(site: u32) {
    if !enabled() {
        return;
    }
    match SITE_HEAT.get(site as usize) {
        Some(cell) => {
            cell.fetch_add(1, Ordering::Relaxed);
        }
        None => add(Counter::SiteHeatDropped, 1),
    }
}

/// Count `n` accesses at instrumentation site `site` in one atomic add —
/// the bulk form of [`site_access`] for callers that batch per-thread
/// deltas and flush them at epoch boundaries. No-op when disabled.
#[inline]
pub fn site_access_n(site: u32, n: u64) {
    if n == 0 || !enabled() {
        return;
    }
    match SITE_HEAT.get(site as usize) {
        Some(cell) => {
            cell.fetch_add(n, Ordering::Relaxed);
        }
        None => add(Counter::SiteHeatDropped, n),
    }
}

/// The `n` hottest sites as `(site_id, access_count)`, hottest first.
/// Site ids resolve to labels through the runtime's site registry; this
/// crate deliberately stores only the ids.
#[must_use]
pub fn top_sites(n: usize) -> Vec<(u32, u64)> {
    let mut hot: Vec<(u32, u64)> = SITE_HEAT
        .iter()
        .enumerate()
        .filter_map(|(id, cell)| {
            let v = cell.load(Ordering::Relaxed);
            (v > 0).then_some((id as u32, v))
        })
        .collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hot.truncate(n);
    hot
}

/// Count one completed fuzzing campaign for worker `worker` (a dense fleet
/// worker index). Indices past [`WORKER_SLOTS`] saturate into the last
/// slot. Each worker writes only its own cell, so concurrent workers never
/// contend. No-op when disabled.
#[inline]
pub fn worker_exec(worker: usize) {
    if !enabled() {
        return;
    }
    WORKER_EXECS[worker.min(WORKER_SLOTS - 1)].fetch_add(1, Ordering::Relaxed);
}

/// Per-worker campaign counts as `(worker_index, campaigns)`, ascending by
/// worker index, skipping workers that ran nothing.
#[must_use]
pub fn worker_execs() -> Vec<(usize, u64)> {
    WORKER_EXECS
        .iter()
        .enumerate()
        .filter_map(|(w, cell)| {
            let v = cell.load(Ordering::Relaxed);
            (v > 0).then_some((w, v))
        })
        .collect()
}

/// Zero all counters, gauges, histograms and site heat. Called from
/// [`crate::reset`].
pub(crate) fn reset_metrics() {
    for row in &COUNTERS {
        row.zero();
    }
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
    for s in &HISTS {
        for hist in &s.buckets {
            for b in hist {
                b.store(0, Ordering::Relaxed);
            }
        }
        for sum in &s.sums {
            sum.store(0, Ordering::Relaxed);
        }
    }
    for cell in &SITE_HEAT {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in &WORKER_EXECS {
        cell.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock_registry;

    #[test]
    fn counter_names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate counter catalog name");
        assert!(names.iter().all(|n| n.contains('.')));
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = lock_registry();
        crate::set_enabled(false);
        crate::reset();
        add(Counter::PmLoads, 7);
        gauge_set(Gauge::FuzzWorkers, 4);
        record(Histogram::PmFlushNs, 100);
        site_access(3);
        assert_eq!(counter(Counter::PmLoads), 0);
        assert_eq!(gauge(Gauge::FuzzWorkers), 0);
        assert_eq!(histogram(Histogram::PmFlushNs).0, 0);
        assert!(top_sites(8).is_empty());
    }

    #[test]
    fn shards_merge_correctly_under_contention() {
        let _g = lock_registry();
        crate::set_enabled(true);
        crate::reset();
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 200 * 1024; // divisible by 16 and 1024
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        add(Counter::PmStores, 1);
                        if i % 16 == 0 {
                            add(Counter::PmFlushes, 2);
                        }
                        record(Histogram::PmFlushNs, i % 1024);
                        site_access((t % 3) as u32);
                    }
                });
            }
        });
        crate::set_enabled(false);
        assert_eq!(counter(Counter::PmStores), THREADS as u64 * PER_THREAD);
        assert_eq!(
            counter(Counter::PmFlushes),
            THREADS as u64 * (PER_THREAD / 16) * 2
        );
        let (count, sum, buckets) = histogram(Histogram::PmFlushNs);
        assert_eq!(count, THREADS as u64 * PER_THREAD);
        // Each thread records the ramp 0..1024 exactly PER_THREAD/1024 times.
        let ramp: u64 = (0..1024u64).sum();
        assert_eq!(sum, THREADS as u64 * (PER_THREAD / 1024) * ramp);
        assert_eq!(buckets.iter().map(|(_, n)| n).sum::<u64>(), count);
        let hot = top_sites(4);
        assert_eq!(hot.iter().map(|(_, n)| n).sum::<u64>(), count);
        // Thread ids 0..3 map to sites 0,1,2,0 — site 0 is hottest.
        assert_eq!(hot[0].0, 0);
    }

    #[test]
    fn histogram_bucket_bounds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn worker_execs_track_per_worker_and_saturate() {
        let _g = lock_registry();
        crate::set_enabled(true);
        crate::reset();
        worker_exec(0);
        worker_exec(0);
        worker_exec(3);
        worker_exec(WORKER_SLOTS + 10); // saturates into the last slot
        crate::set_enabled(false);
        assert_eq!(worker_execs(), vec![(0, 2), (3, 1), (WORKER_SLOTS - 1, 1)]);
        crate::set_enabled(true);
        crate::reset();
        crate::set_enabled(false);
        assert!(worker_execs().is_empty(), "reset must clear the table");
    }

    #[test]
    fn out_of_range_site_is_dropped_not_aliased() {
        let _g = lock_registry();
        crate::set_enabled(true);
        crate::reset();
        site_access(SITE_SLOTS as u32 + 5);
        crate::set_enabled(false);
        assert_eq!(counter(Counter::SiteHeatDropped), 1);
        assert!(top_sites(usize::MAX).is_empty());
    }
}

//! Campaign observability for the PMRace reproduction.
//!
//! Everything the fuzzer and its tooling emit about *where time goes* flows
//! through this crate: a lock-free metrics registry
//! ([`metrics`]: counters, gauges, log2-bucketed histograms), a structured
//! span-tracing facade ([`trace`]: static phase ids, per-thread ring
//! buffers, JSONL drain), machine-readable snapshots
//! ([`snapshot`]: the documented `telemetry.json` schema plus its
//! validator), and offline rendering ([`stats`]: the `repro stats`
//! per-phase breakdown and hottest-sites tables).
//!
//! The full catalog of metric and event names, with units and emission
//! sites, lives in `docs/OBSERVABILITY.md`; that document is the contract
//! this crate implements, and [`snapshot::validate_snapshot_text`] enforces
//! it structurally.
//!
//! # Zero-cost-when-disabled discipline
//!
//! Telemetry is off by default. Every emission helper starts with one
//! relaxed load of a global [`AtomicBool`] and an early return, so an
//! instrumentation point on the hot path (e.g. every PM store) costs a
//! predictable branch when disabled — the same discipline as the sharded
//! shadow/coverage hot path it observes. Enable with [`set_enabled`];
//! nothing here spawns threads or installs hooks.
//!
//! Counters and histograms are sharded per thread over cache-line-aligned
//! rows ([`metrics`]), so enabled-mode recording never takes a lock and
//! never bounces a shared cache line between driver threads. Reads
//! (snapshots) sum the shards.
//!
//! # Process-global state
//!
//! The registry is process-global and cumulative, which is what the
//! consumers want: a fuzzing campaign's validation re-runs, checkpoint
//! restores and replay attempts all land in one coherent snapshot. Tests
//! that assert on absolute values must serialize access and call [`reset`]
//! first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
pub mod jsonstr;
pub mod metrics;
pub mod snapshot;
pub mod stats;
pub mod trace;

pub use metrics::{add, Counter, Gauge, Histogram};
pub use snapshot::Snapshot;
pub use trace::{span, Phase, SpanGuard};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of shards counters and histograms are spread over. Thread `t`
/// writes shard `t mod SHARDS`; snapshot reads sum all shards.
pub(crate) const SHARDS: usize = 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Is telemetry recording enabled? One relaxed atomic load; every
/// instrumentation site checks this first.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry recording on or off (process-global).
///
/// The first `set_enabled(true)` pins the trace epoch: span start offsets
/// and [`Snapshot::capture`]'s `elapsed_us` are measured from that instant.
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The instant telemetry was first enabled (or first observed, whichever
/// came first). All trace timestamps are offsets from this.
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the trace epoch.
#[must_use]
pub fn elapsed_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Zero every counter, gauge, histogram, site-heat slot and phase total,
/// and discard all buffered span events.
///
/// Test and multi-run support: the registry is process-global, so a harness
/// running several telemetry-observed campaigns back to back resets between
/// them. The epoch is *not* reset (timestamps stay monotonic).
pub fn reset() {
    metrics::reset_metrics();
    trace::reset_trace();
}

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Small dense per-thread index, assigned on first telemetry activity.
/// Used both as the shard selector (`idx mod SHARDS`) and as the thread id
/// recorded on span events.
pub(crate) fn thread_idx() -> usize {
    THREAD_IDX.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

pub(crate) fn shard() -> usize {
    thread_idx() % SHARDS
}

#[cfg(test)]
pub(crate) mod tests {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// The registry is process-global, so tests that enable telemetry and
    /// assert on absolute values serialize through this lock.
    pub(crate) fn lock_registry() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

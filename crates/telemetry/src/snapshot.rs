//! The `telemetry.json` snapshot: capture, serialization, and the schema
//! validator the CI job runs against it.
//!
//! A [`Snapshot`] is a point-in-time read of the whole registry. Its JSON
//! form is **schema version 2**, documented field by field in
//! `docs/OBSERVABILITY.md`:
//!
//! ```json
//! {
//!   "version": 1,
//!   "enabled": true,
//!   "elapsed_us": 12345678,
//!   "counters":   { "exec.campaigns": 480, ... every catalog counter ... },
//!   "gauges":     { "cov.alias_pairs": 321, ... every catalog gauge ... },
//!   "histograms": { "pm.flush_ns": { "count": 9, "sum": 912,
//!                                    "buckets": [[6, 7], [7, 2]] }, ... },
//!   "phases":     { "execution": { "count": 480, "total_us": 3812345 },
//!                   ... every catalog phase ... },
//!   "worker_execs": [ { "worker": 0, "execs": 241 },
//!                     ... one entry per fleet worker that ran ... ],
//!   "top_sites":  [ { "site": "clevel.rs:88 bucket_cas", "accesses": 812 } ]
//! }
//! ```
//!
//! The validator ([`validate_snapshot_text`]) is strict in both directions:
//! every cataloged name must be present, and no un-cataloged name may
//! appear. That makes the documentation, the emitter and the checker one
//! contract — drift in any of them fails CI.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::{push_str_escaped, Value};
use crate::metrics::{self, Counter, Gauge, Histogram};
use crate::trace::{self, Phase};

/// Version stamped into `telemetry.json`; bump on any schema change and
/// update `docs/OBSERVABILITY.md` in the same commit. Version 2 added the
/// required top-level `worker_execs` array (per-fleet-worker campaign
/// counts).
pub const SCHEMA_VERSION: u64 = 2;

/// How many of the hottest sites a snapshot carries.
pub const TOP_SITES: usize = 20;

/// Read-out of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramStat {
    /// Catalog name (`pm.flush_ns`, ...).
    pub name: &'static str,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (ns).
    pub sum: u64,
    /// Non-empty buckets as `(log2_lower_bound, count)`.
    pub buckets: Vec<(u32, u64)>,
}

/// Read-out of one phase's cumulative span totals.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Catalog name (`execution`, ...).
    pub name: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Total time inside the phase, microseconds (summed across threads,
    /// so this can exceed wall-clock when workers overlap).
    pub total_us: u64,
}

/// One hot instrumentation site.
#[derive(Debug, Clone)]
pub struct SiteStat {
    /// Resolved site name (label + location), or `site#<id>` when the
    /// caller could not resolve the id.
    pub site: String,
    /// PM accesses recorded at this site.
    pub accesses: u64,
}

/// A point-in-time read of the whole telemetry registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Whether telemetry was enabled at capture time.
    pub enabled: bool,
    /// Microseconds since the trace epoch.
    pub elapsed_us: u64,
    /// Every counter, in catalog order.
    pub counters: Vec<(&'static str, u64)>,
    /// Every gauge, in catalog order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Every histogram, in catalog order.
    pub histograms: Vec<HistogramStat>,
    /// Every phase, in catalog order.
    pub phases: Vec<PhaseStat>,
    /// The hottest sites, hottest first (at most [`TOP_SITES`]).
    pub top_sites: Vec<SiteStat>,
    /// Campaigns completed per fleet worker, ascending worker index
    /// (workers that ran nothing are omitted).
    pub worker_execs: Vec<(usize, u64)>,
}

impl Snapshot {
    /// Capture the registry now. `resolve` maps a runtime site id to a
    /// display name (typically label + source location); return `None` to
    /// fall back to `site#<id>`.
    #[must_use]
    pub fn capture(resolve: &dyn Fn(u32) -> Option<String>) -> Snapshot {
        Snapshot {
            enabled: crate::enabled(),
            elapsed_us: crate::elapsed_us(),
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name(), metrics::counter(c)))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| (g.name(), metrics::gauge(g)))
                .collect(),
            histograms: Histogram::ALL
                .iter()
                .map(|&h| {
                    let (count, sum, buckets) = metrics::histogram(h);
                    HistogramStat {
                        name: h.name(),
                        count,
                        sum,
                        buckets,
                    }
                })
                .collect(),
            phases: trace::phase_totals()
                .into_iter()
                .map(|(p, count, ns)| PhaseStat {
                    name: p.name(),
                    count,
                    total_us: ns / 1_000,
                })
                .collect(),
            top_sites: metrics::top_sites(TOP_SITES)
                .into_iter()
                .map(|(id, accesses)| SiteStat {
                    site: resolve(id).unwrap_or_else(|| format!("site#{id}")),
                    accesses,
                })
                .collect(),
            worker_execs: metrics::worker_execs(),
        }
    }

    /// Value of a captured counter by catalog name (`None` for names not
    /// in the catalog).
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Captured phase stats by catalog name.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Serialize to schema-version-2 JSON (pretty-printed, one leaf per
    /// line — the exact format [`validate_snapshot_text`] checks).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"enabled\": {},", self.enabled);
        let _ = writeln!(out, "  \"elapsed_us\": {},", self.elapsed_us);
        out.push_str("  \"counters\": {\n");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 == self.counters.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(out, "    \"{name}\": {v}{comma}");
        }
        out.push_str("  },\n  \"gauges\": {\n");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 == self.gauges.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{name}\": {v}{comma}");
        }
        out.push_str("  },\n  \"histograms\": {\n");
        for (i, h) in self.histograms.iter().enumerate() {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, n)| format!("[{b}, {n}]"))
                .collect();
            let comma = if i + 1 == self.histograms.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}{comma}",
                h.name,
                h.count,
                h.sum,
                buckets.join(", ")
            );
        }
        out.push_str("  },\n  \"phases\": {\n");
        for (i, p) in self.phases.iter().enumerate() {
            let comma = if i + 1 == self.phases.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"count\": {}, \"total_us\": {}}}{comma}",
                p.name, p.count, p.total_us
            );
        }
        out.push_str("  },\n  \"top_sites\": [\n");
        for (i, s) in self.top_sites.iter().enumerate() {
            let mut site = String::new();
            push_str_escaped(&mut site, &s.site);
            let comma = if i + 1 == self.top_sites.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{\"site\": {site}, \"accesses\": {}}}{comma}",
                s.accesses
            );
        }
        out.push_str("  ],\n  \"worker_execs\": [\n");
        for (i, (w, n)) in self.worker_execs.iter().enumerate() {
            let comma = if i + 1 == self.worker_execs.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(out, "    {{\"worker\": {w}, \"execs\": {n}}}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Capture a snapshot and write it as `telemetry.json` under `dir`
/// (created if missing). Returns the file path.
///
/// # Errors
///
/// Propagates filesystem errors creating the directory or writing.
pub fn write_snapshot(dir: &Path, resolve: &dyn Fn(u32) -> Option<String>) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join("telemetry.json");
    fs::write(&path, Snapshot::capture(resolve).to_json())?;
    Ok(path)
}

/// Drain all buffered span events and write them as `trace.jsonl` under
/// `dir` (created if missing): one JSON object per line, first a `meta`
/// line, then `span` lines sorted by start time. Returns the path and the
/// number of span lines.
///
/// # Errors
///
/// Propagates filesystem errors creating the directory or writing.
pub fn write_trace_jsonl(dir: &Path) -> io::Result<(PathBuf, usize)> {
    fs::create_dir_all(dir)?;
    let events = trace::drain_events();
    let mut out = String::with_capacity(64 * events.len() + 64);
    let _ = writeln!(
        out,
        "{{\"type\": \"meta\", \"version\": {SCHEMA_VERSION}, \"spans\": {}, \"dropped\": {}}}",
        events.len(),
        metrics::counter(Counter::TraceSpansDropped)
    );
    for e in &events {
        let _ = writeln!(
            out,
            "{{\"type\": \"span\", \"phase\": \"{}\", \"thread\": {}, \"start_us\": {}, \"dur_us\": {}}}",
            e.phase.name(),
            e.thread,
            e.start_us,
            e.dur_us
        );
    }
    let path = dir.join("trace.jsonl");
    fs::write(&path, out)?;
    Ok((path, events.len()))
}

fn check_uint_map(doc: &Value, field: &str, expected: &[&str]) -> Result<(), String> {
    let map = doc
        .get(field)
        .and_then(Value::as_obj)
        .ok_or_else(|| format!("missing or non-object \"{field}\""))?;
    for name in expected {
        let v = map
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("{field}: missing cataloged key \"{name}\""))?;
        if field == "counters" || field == "gauges" {
            v.as_u64()
                .ok_or_else(|| format!("{field}.{name}: not a non-negative integer"))?;
        }
    }
    for (k, _) in map {
        if !expected.contains(&k.as_str()) {
            return Err(format!("{field}: un-cataloged key \"{k}\""));
        }
    }
    Ok(())
}

/// Validate a `telemetry.json` document against schema version 2: correct
/// version, all required top-level fields, every cataloged counter / gauge
/// / histogram / phase present with the right shape, and no un-cataloged
/// names anywhere.
///
/// # Errors
///
/// Returns a human-readable description of the first violation found.
pub fn validate_snapshot_text(text: &str) -> Result<(), String> {
    let doc = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match doc.get("version").and_then(Value::as_u64) {
        Some(SCHEMA_VERSION) => {}
        Some(v) => return Err(format!("schema version {v}, expected {SCHEMA_VERSION}")),
        None => return Err("missing numeric \"version\"".to_string()),
    }
    doc.get("enabled")
        .and_then(Value::as_bool)
        .ok_or("missing boolean \"enabled\"")?;
    doc.get("elapsed_us")
        .and_then(Value::as_u64)
        .ok_or("missing integer \"elapsed_us\"")?;

    let counter_names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
    let gauge_names: Vec<&str> = Gauge::ALL.iter().map(|g| g.name()).collect();
    let hist_names: Vec<&str> = Histogram::ALL.iter().map(|h| h.name()).collect();
    let phase_names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();

    check_uint_map(&doc, "counters", &counter_names)?;
    check_uint_map(&doc, "gauges", &gauge_names)?;
    check_uint_map(&doc, "histograms", &hist_names)?;
    check_uint_map(&doc, "phases", &phase_names)?;

    let hists = doc.get("histograms").and_then(Value::as_obj).unwrap_or(&[]);
    for (name, h) in hists {
        let count = h
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("histograms.{name}: missing integer \"count\""))?;
        h.get("sum")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("histograms.{name}: missing integer \"sum\""))?;
        let buckets = h
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("histograms.{name}: missing array \"buckets\""))?;
        let mut total = 0u64;
        for b in buckets {
            let pair = b
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("histograms.{name}: bucket is not a [log2, count] pair"))?;
            pair[0]
                .as_u64()
                .filter(|lb| *lb < crate::metrics::HIST_BUCKETS as u64)
                .ok_or_else(|| format!("histograms.{name}: bad bucket bound"))?;
            total += pair[1]
                .as_u64()
                .ok_or_else(|| format!("histograms.{name}: bad bucket count"))?;
        }
        if total != count {
            return Err(format!(
                "histograms.{name}: bucket counts sum to {total}, \"count\" says {count}"
            ));
        }
    }

    let phases = doc.get("phases").and_then(Value::as_obj).unwrap_or(&[]);
    for (name, p) in phases {
        p.get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("phases.{name}: missing integer \"count\""))?;
        p.get("total_us")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("phases.{name}: missing integer \"total_us\""))?;
    }

    let sites = doc
        .get("top_sites")
        .and_then(Value::as_arr)
        .ok_or("missing array \"top_sites\"")?;
    let mut prev = u64::MAX;
    for s in sites {
        s.get("site")
            .and_then(Value::as_str)
            .ok_or("top_sites: entry missing string \"site\"")?;
        let n = s
            .get("accesses")
            .and_then(Value::as_u64)
            .ok_or("top_sites: entry missing integer \"accesses\"")?;
        if n > prev {
            return Err("top_sites: not sorted hottest-first".to_string());
        }
        prev = n;
    }

    let workers = doc
        .get("worker_execs")
        .and_then(Value::as_arr)
        .ok_or("missing array \"worker_execs\"")?;
    let mut prev_worker = None;
    for w in workers {
        let idx = w
            .get("worker")
            .and_then(Value::as_u64)
            .ok_or("worker_execs: entry missing integer \"worker\"")?;
        w.get("execs")
            .and_then(Value::as_u64)
            .filter(|n| *n > 0)
            .ok_or("worker_execs: entry missing positive integer \"execs\"")?;
        if prev_worker.is_some_and(|p| idx <= p) {
            return Err("worker_execs: worker indices not strictly ascending".to_string());
        }
        prev_worker = Some(idx);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock_registry;

    #[test]
    fn snapshot_json_validates_against_schema() {
        let _g = lock_registry();
        crate::set_enabled(true);
        crate::reset();
        metrics::add(Counter::ExecCampaigns, 3);
        metrics::record(Histogram::PmFlushNs, 812);
        metrics::site_access(0);
        metrics::site_access(0);
        metrics::site_access(1);
        {
            let _span = crate::trace::span(Phase::Execution);
        }
        crate::set_enabled(false);
        let snap = Snapshot::capture(&|id| (id == 0).then(|| "probe.rs:1 probe".into()));
        let text = snap.to_json();
        validate_snapshot_text(&text).expect("self-emitted snapshot must validate");
        assert!(text.contains("\"exec.campaigns\": 3"));
        assert!(text.contains("probe.rs:1 probe"));
        assert!(text.contains("\"site#1\""));
    }

    #[test]
    fn validator_rejects_missing_and_unknown_keys() {
        let _g = lock_registry();
        crate::set_enabled(false);
        crate::reset();
        let good = Snapshot::capture(&|_| None).to_json();
        validate_snapshot_text(&good).unwrap();

        let missing = good.replacen("\"exec.campaigns\": 0,", "", 1);
        assert!(validate_snapshot_text(&missing)
            .unwrap_err()
            .contains("exec.campaigns"));

        let unknown = good.replacen(
            "\"exec.campaigns\": 0,",
            "\"exec.campaigns\": 0,\n    \"exec.bogus\": 1,",
            1,
        );
        assert!(validate_snapshot_text(&unknown)
            .unwrap_err()
            .contains("exec.bogus"));

        let wrong_version = good.replacen("\"version\": 2", "\"version\": 99", 1);
        assert!(validate_snapshot_text(&wrong_version)
            .unwrap_err()
            .contains("99"));

        assert!(validate_snapshot_text("not json").is_err());
    }

    #[test]
    fn write_snapshot_and_trace_create_files() {
        let _g = lock_registry();
        crate::set_enabled(true);
        crate::reset();
        {
            let _span = crate::trace::span(Phase::SeedGen);
        }
        crate::set_enabled(false);
        let dir = std::env::temp_dir().join("pmrace-telemetry-test-snapshot");
        let _ = fs::remove_dir_all(&dir);
        let snap_path = write_snapshot(&dir, &|_| None).unwrap();
        let (trace_path, n) = write_trace_jsonl(&dir).unwrap();
        assert!(snap_path.ends_with("telemetry.json"));
        assert_eq!(n, 1);
        let trace_text = fs::read_to_string(&trace_path).unwrap();
        let mut lines = trace_text.lines();
        let meta = crate::json::Value::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            meta.get("type").and_then(crate::json::Value::as_str),
            Some("meta")
        );
        let span = crate::json::Value::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            span.get("phase").and_then(crate::json::Value::as_str),
            Some("seed_gen")
        );
        validate_snapshot_text(&fs::read_to_string(&snap_path).unwrap()).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}

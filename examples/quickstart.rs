//! Quickstart: fuzz a bundled PM system and print what PMRace found.
//!
//! ```text
//! cargo run --release --example quickstart [target] [seconds]
//! ```
//!
//! Defaults to `P-CLHT` for 20 seconds. Try `memcached-pmem`, `CCEH`,
//! `FAST-FAIR`, or `clevel`.

use std::time::Duration;

use pmrace::{FuzzConfig, Fuzzer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "P-CLHT".to_owned());
    let secs: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    // Targets resolve by name through the process-global registry.
    pmrace::register_builtins();
    let mut cfg = FuzzConfig::new(&target);
    cfg.wall_budget = Duration::from_secs(secs);
    cfg.max_campaigns = 10_000;
    cfg.workers = 4;
    println!(
        "fuzzing {target} for {secs}s with {} workers...",
        cfg.workers
    );

    let report = Fuzzer::new(cfg)?.run()?;

    println!("\n== run summary ==");
    println!(
        "campaigns:        {} ({:.1}/s)",
        report.campaigns, report.execs_per_sec
    );
    println!("PM alias pairs:   {}", report.alias_pairs);
    println!("branches:         {}", report.branches);
    let s = report.stats;
    println!("\n== detections ==");
    println!("inter candidates: {}", s.inter_candidates);
    println!("intra candidates: {}", s.intra_candidates);
    println!("inter inconsistencies: {}", s.inter);
    println!("intra inconsistencies: {}", s.intra);
    println!("validated false positives: {}", s.validated_fp);
    println!("whitelisted false positives: {}", s.whitelisted_fp);
    println!(
        "sync inconsistencies: {} ({} validated benign)",
        s.sync, s.sync_validated_fp
    );
    println!("hang campaigns: {}", s.hangs);

    println!("\n== unique bugs ({}) ==", report.bugs.len());
    for bug in &report.bugs {
        println!("- {bug}");
    }
    if let Some(first) = report.inter_times.first() {
        println!(
            "\nfirst inter-thread inconsistency found after {} ms",
            first.as_millis()
        );
    }
    Ok(())
}

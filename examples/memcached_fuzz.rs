//! Fuzz the memcached-pmem analog through its text protocol, comparing
//! PMRace's semantic command generator with an AFL++-style byte mutator
//! (the Table 4 experiment, interactive edition) — then hunt the
//! value-inconsistency bugs (9/10) with the structured fuzzer.

use std::sync::Arc;
use std::time::Duration;

use pmrace::core::textgen::{ByteMutator, CommandGen};
use pmrace::pmem::{Pool, PoolOpts, ThreadId};
use pmrace::targets::memkv::proto::{classify, CmdFamily};
use pmrace::targets::memkv::MemKv;
use pmrace::{FuzzConfig, Fuzzer, Session, SessionConfig, StrategyKind};

fn protocol_coverage(label: &str, lines: &[String]) -> Result<usize, Box<dyn std::error::Error>> {
    let session = Session::new(
        Arc::new(Pool::new(PoolOpts::small())),
        SessionConfig {
            capture_crash_images: false,
            ..SessionConfig::default()
        },
    );
    let kv = MemKv::init(&session)?;
    let view = session.view(ThreadId(0));
    let mut errors = 0;
    for line in lines {
        if classify(line) == CmdFamily::Error {
            errors += 1;
        }
        let _ = kv.process_command(&view, line)?;
    }
    let (_, branches) = session.coverage_counts();
    println!(
        "{label:>8}: {} commands, {errors} invalid, {branches} protocol branches covered",
        lines.len()
    );
    Ok(branches)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== input-generator comparison (Table 4 flavor) ==");
    let n = 500;
    let afl_lines = ByteMutator::new(7).batch(n);
    let pmr_lines = CommandGen::new(7).batch(n);
    let afl = protocol_coverage("AFL++", &afl_lines)?;
    let pmr = protocol_coverage("PMRace", &pmr_lines)?;
    assert!(
        pmr >= afl,
        "semantic generation must reach at least the byte mutator's coverage"
    );
    println!(
        "semantic generation reaches the code behind the parser; byte mutation mostly dies in it."
    );

    println!("\n== fuzzing memcached-pmem for PM concurrency bugs ==");
    // Targets resolve by name through the process-global registry.
    pmrace::register_builtins();
    let mut cfg = FuzzConfig::new("memcached-pmem");
    cfg.strategy = StrategyKind::Pmrace;
    cfg.wall_budget = Duration::from_secs(25);
    cfg.max_campaigns = 400;
    cfg.workers = 4;
    let report = Fuzzer::new(cfg)?.run()?;
    println!(
        "{} campaigns: {} inter + {} intra inconsistencies, {} validated FPs (index rebuild), {} bugs",
        report.campaigns,
        report.stats.inter,
        report.stats.intra,
        report.stats.validated_fp,
        report.bugs.len()
    );
    for bug in &report.bugs {
        println!("- {bug}");
    }
    Ok(())
}

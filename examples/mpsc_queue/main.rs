//! Fuzz an out-of-tree target through the public plugin API.
//!
//! Run with: `cargo run --release --example mpsc_queue [secs]`
//!
//! The queue implementation lives in `target.rs` next to this file and
//! uses only the `pmrace` facade — no access to workspace internals. This
//! binary registers it with the process-global registry and points the
//! stock fuzzer at it by name, exactly as an external crate would.

mod target;

use std::time::Duration;

use pmrace::{FuzzConfig, Fuzzer};

fn main() -> Result<(), pmrace::runtime::RtError> {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    // One line of integration: after this, "mpsc-queue" resolves anywhere
    // a built-in name would — Fuzzer::new, replay artifacts, the CLI's
    // `fuzz --list-targets`.
    pmrace::register_target(target::SPEC).expect("unique name");

    let mut cfg = FuzzConfig::new("mpsc-queue");
    cfg.wall_budget = Duration::from_secs(secs);
    cfg.max_campaigns = 400;
    cfg.workers = 2;
    cfg.threads = 4;
    cfg.rng_seed = 3;
    let report = Fuzzer::new(cfg)?.run()?;

    println!(
        "{}: {} campaigns, {} candidates, {} unique bugs",
        report.target,
        report.campaigns,
        report.stats.inter_candidates + report.stats.intra_candidates,
        report.bugs.len(),
    );
    for bug in &report.bugs {
        println!("  {bug}");
    }

    // The two planted inconsistencies (see target.rs) surface well within
    // the default budget; exit nonzero otherwise so CI smoke runs gate on
    // the plugin boundary actually finding bugs.
    let hit = |label: &str| report.bugs.iter().any(|b| b.write_label.contains(label));
    let tail = hit("mpsc_queue.c:88");
    let slot = hit("mpsc_queue.c:97");
    println!("planted unflushed-tail bug found: {tail}");
    println!("planted unflushed-slot bug found: {slot}");
    if !(tail && slot) {
        eprintln!("planted bugs not found — raise the budget or check the registry wiring");
        std::process::exit(1);
    }
    Ok(())
}

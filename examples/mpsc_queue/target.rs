//! A persistent multi-producer/single-consumer ring queue — the *plugin*
//! target proving PMRace's public target API.
//!
//! Everything here goes through the `pmrace` facade: the [`Target`] trait,
//! the [`TargetSpec`] builders, and the process-global registry. Nothing
//! in `crates/targets` or `crates/core` knows this workload exists; it is
//! registered at runtime by the example binary and by
//! `tests/plugin_target.rs`.
//!
//! The queue is *strictly* MPSC: driver thread 0 is the single consumer
//! and every other driver thread produces (see [`Target::exec`]), so the
//! racy reads below only ever observe another thread's unflushed writes.
//! Two PM inter-thread inconsistency bugs are planted, in the style of the
//! log-free persistent queues the paper evaluates against:
//!
//! 1. **Unflushed tail** (`mpsc_queue.c:88` / `mpsc_queue.c:131` /
//!    `mpsc_queue.c:138`) — producers reserve a slot by CAS-advancing
//!    `TAIL`, which is *never persisted*. A consumer racy-reads `TAIL` and
//!    durably logs the observed high-water mark. A crash loses the tail
//!    advance but keeps the log: the recovered queue never held that many
//!    items.
//! 2. **Unflushed slot** (`mpsc_queue.c:97` / `mpsc_queue.c:142` /
//!    `mpsc_queue.c:149`) — the producer fills its reserved slot with a
//!    plain store and returns without a flush. The consumer pops the item
//!    and durably logs the popped value. A crash loses the slot contents
//!    while the durable log claims the value was consumed.
//!
//! Recovery rewinds both cursors (consistent with the unpersisted tail)
//! but — like the real bugs — never heals the durable log cells, so
//! post-failure validation classifies both findings as genuine bugs.

use std::sync::Arc;

use pmrace::pmem::PmAllocator;
use pmrace::runtime::{site, PmView, RtError, Session};
use pmrace::{Op, OpResult, OpWeights, SeedHints, Target, TargetSpec};

// Root object layout: two cursors, two durable log cells, then the ring.
const Q_HEAD: u64 = 0;
const Q_TAIL: u64 = 8;
const Q_WATERMARK: u64 = 16;
const Q_LAST_POPPED: u64 = 24;
const Q_SLOTS: u64 = 32;
/// Ring capacity in items; small so campaigns wrap the ring constantly.
const CAP: u64 = 8;
const ROOT_SIZE: usize = (Q_SLOTS + CAP * 8) as usize;

/// Bounded optimistic retries before an op gives up (keeps contended
/// campaigns from spinning to the deadline).
const MAX_TRIES: u32 = 64;

/// Seed grammar for a queue: no keyed updates, an enqueue/dequeue-heavy
/// mix, and small values that make popped items easy to eyeball.
const HINTS: SeedHints = SeedHints {
    key_range: 8,
    hot_keys: 3,
    max_value: 16,
    max_step: 4,
    weights: OpWeights {
        insert: 40,
        get: 10,
        update: 0,
        delete: 35,
        incr: 5,
        decr: 10,
    },
};

/// The queue instance bound to a session's pool.
#[derive(Debug)]
pub struct MpscQueue {
    root: u64,
}

/// Registration entry: hand this to `pmrace::register_target`.
pub static SPEC: TargetSpec = TargetSpec::new(
    "mpsc-queue",
    |session| Ok(Arc::new(MpscQueue::init(session)?) as Arc<dyn Target>),
    |session| Ok(Arc::new(MpscQueue::recover(session)?) as Arc<dyn Target>),
    pmrace::pmem::PoolOpts::small,
)
.with_hints(HINTS);

impl MpscQueue {
    /// Format the session's pool and build an empty queue.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn init(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace::pmem::ThreadId(0));
        let alloc = PmAllocator::format(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.alloc(ROOT_SIZE, view.tid())?;
        alloc.set_root(root, view.tid())?;
        view.ntstore_u64(root + Q_HEAD, 0u64, site!("mpsc.init.head"))?;
        view.ntstore_u64(root + Q_TAIL, 0u64, site!("mpsc.init.tail"))?;
        view.ntstore_u64(root + Q_WATERMARK, 0u64, site!("mpsc.init.watermark"))?;
        view.ntstore_u64(root + Q_LAST_POPPED, 0u64, site!("mpsc.init.last_popped"))?;
        for s in 0..CAP {
            view.ntstore_u64(root + Q_SLOTS + s * 8, 0u64, site!("mpsc.init.zero_slot"))?;
        }
        Ok(MpscQueue { root })
    }

    /// Reopen an existing pool. Both cursors rewind to zero — consistent
    /// with the never-persisted tail — but the durable log cells
    /// (`WATERMARK`, `LAST_POPPED`) are deliberately left alone: that is
    /// what makes the planted inconsistencies real bugs rather than
    /// recovery-healed false positives.
    ///
    /// # Errors
    ///
    /// Propagates pool/allocator errors.
    pub fn recover(session: &Arc<Session>) -> Result<Self, RtError> {
        let view = session.view(pmrace::pmem::ThreadId(0));
        let alloc = PmAllocator::open(Arc::clone(session.pool()), view.tid())?;
        let root = alloc.root()?;
        view.ntstore_u64(root + Q_HEAD, 0u64, site!("mpsc.recover.head"))?;
        view.ntstore_u64(root + Q_TAIL, 0u64, site!("mpsc.recover.tail"))?;
        Ok(MpscQueue { root })
    }

    /// Reserve a slot by CAS on `TAIL`, then fill it.
    ///
    /// Both planted *write* sites live here: the CAS leaves `TAIL`
    /// unpersisted (`mpsc_queue.c:88`), and the slot fill is a plain store
    /// with no flush (`mpsc_queue.c:97`).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RtError::Timeout`] on hangs).
    pub fn enqueue(&self, view: &PmView, item: u64) -> Result<OpResult, RtError> {
        view.branch(site!("mpsc.enqueue"));
        let mut tries = 0;
        loop {
            let tail = view.load_u64(self.root + Q_TAIL, site!("mpsc.enq.read_tail"))?;
            let head = view.load_u64(self.root + Q_HEAD, site!("mpsc.enq.read_head"))?;
            if tail.value().wrapping_sub(head.value()) >= CAP {
                return Ok(OpResult::Missing); // ring full
            }
            // Bug 1 write side: the reservation is published by CAS and
            // never flushed — a crash rolls the tail back.
            let (won, _) = view.cas_u64(
                self.root + Q_TAIL,
                tail.value(),
                tail.value().wrapping_add(1),
                site!("mpsc_queue.c:88.advance_tail"),
            )?;
            if won {
                let slot = self.root + Q_SLOTS + (tail.value() % CAP) * 8;
                // Bug 2 write side: the payload is a plain store with no
                // persist before the item becomes visible to the consumer.
                view.store_u64(slot, item, site!("mpsc_queue.c:97.store_slot"))?;
                return Ok(OpResult::Done);
            }
            tries += 1;
            if tries >= MAX_TRIES {
                return Ok(OpResult::Missing);
            }
            view.spin_yield()?;
        }
    }

    /// Pop the front item and durably log what was observed. Only the
    /// single consumer thread calls this, so `HEAD` needs no CAS.
    ///
    /// Both planted *read* and *effect* sites live here: the racy `TAIL`
    /// read (`mpsc_queue.c:131`) flows into the durable watermark log
    /// (`mpsc_queue.c:138`), and the racy slot read (`mpsc_queue.c:142`)
    /// flows into the durable pop log (`mpsc_queue.c:149`).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn dequeue(&self, view: &PmView) -> Result<OpResult, RtError> {
        view.branch(site!("mpsc.dequeue"));
        let head = view.load_u64(self.root + Q_HEAD, site!("mpsc.deq.read_head"))?;
        // Bug 1 read side: another thread's unflushed CAS.
        let tail = view.load_u64(self.root + Q_TAIL, site!("mpsc_queue.c:131.read_tail"))?;
        if head.value() == tail.value() {
            // Empty; still log the observed high-water mark — the
            // durable side effect of Bug 1.
            view.ntstore_u64(
                self.root + Q_WATERMARK,
                tail,
                site!("mpsc_queue.c:138.log_watermark"),
            )?;
            return Ok(OpResult::Missing);
        }
        let slot = self.root + Q_SLOTS + (head.value() % CAP) * 8;
        // Bug 2 read side: the producer's unflushed payload.
        let item = view.load_u64(slot, site!("mpsc_queue.c:142.read_slot"))?;
        view.store_u64(
            self.root + Q_HEAD,
            head.value().wrapping_add(1),
            site!("mpsc.deq.advance_head"),
        )?;
        view.persist(self.root + Q_HEAD, 8, site!("mpsc.deq.flush_head"))?;
        // Bug 1 durable side effect.
        view.ntstore_u64(
            self.root + Q_WATERMARK,
            tail,
            site!("mpsc_queue.c:138.log_watermark"),
        )?;
        // Bug 2 durable side effect.
        view.ntstore_u64(
            self.root + Q_LAST_POPPED,
            item.clone(),
            site!("mpsc_queue.c:149.log_popped"),
        )?;
        Ok(OpResult::Found(item.value()))
    }

    /// Read the front of the queue without popping; logs the watermark
    /// like a dequeue (shares Bug 1's effect site).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn peek(&self, view: &PmView) -> Result<OpResult, RtError> {
        view.branch(site!("mpsc.peek"));
        let head = view.load_u64(self.root + Q_HEAD, site!("mpsc.peek.read_head"))?;
        let tail = view.load_u64(self.root + Q_TAIL, site!("mpsc_queue.c:131.read_tail"))?;
        if head.value() == tail.value() {
            return Ok(OpResult::Missing);
        }
        view.ntstore_u64(
            self.root + Q_WATERMARK,
            tail,
            site!("mpsc_queue.c:138.log_watermark"),
        )?;
        let slot = self.root + Q_SLOTS + (head.value() % CAP) * 8;
        let item = view.load_u64(slot, site!("mpsc.peek.read_slot"))?;
        Ok(OpResult::Found(item.value()))
    }
}

/// Pack an op's key/value into a queue item (nonzero so empty slots stay
/// distinguishable when debugging pool dumps).
fn encode(key: u64, value: u64) -> u64 {
    (key << 8 | (value & 0xff)).max(1)
}

impl Target for MpscQueue {
    fn name(&self) -> &'static str {
        "mpsc-queue"
    }

    fn exec(&self, view: &PmView, op: &Op) -> Result<OpResult, RtError> {
        // MPSC role split: driver thread 0 is the single consumer, every
        // other driver thread is a producer. The racy reads in
        // dequeue/peek therefore only ever observe *other* threads'
        // unflushed writes — the planted bugs are strictly inter-thread.
        if view.tid() == pmrace::pmem::ThreadId(0) {
            match *op {
                Op::Get { .. } => self.peek(view),
                _ => self.dequeue(view),
            }
        } else {
            match *op {
                Op::Insert { key, value } | Op::Update { key, value } => {
                    self.enqueue(view, encode(key, value))
                }
                Op::Incr { key, by } | Op::Decr { key, by } => self.enqueue(view, encode(key, by)),
                Op::Delete { key } | Op::Get { key } => self.enqueue(view, encode(key, 0)),
            }
        }
    }
}

//! Reproduce the paper's motivating example (§2.3.2): the P-CLHT resize
//! race (Bug 1, Table 2).
//!
//! Thread-1 resizes the table and swaps the global table pointer with a
//! plain store (`clht_lb_res.c:785`); thread-2 reads the *unflushed*
//! pointer (`:417`) and inserts a key-value item into the new table. If a
//! crash hits after the item persists but before the pointer flush, the
//! recovered (old) table does not contain the item: silent data loss.
//!
//! This example forces the exact interleaving with the Fig. 6 scheduler
//! (the way PMRace's interleaving tier would once the priority queue
//! surfaces the table-pointer address), shows the detected inconsistency,
//! and then *demonstrates the data loss* by recovering from the captured
//! crash image and looking the inserted keys up.

use std::sync::Arc;
use std::time::Duration;

use pmrace::core::{run_campaign, CampaignConfig, Seed};
use pmrace::sched::{PmraceStrategy, SkipStore, SyncPlan, SyncTuning};
use pmrace::{target_spec, Op, Pool, Session, SessionConfig};
use pmrace_runtime::report::CandidateKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = target_spec("P-CLHT").expect("bundled target");
    // Insert-heavy workload over 4 threads: enough distinct keys to trigger
    // a resize mid-campaign.
    let ops: Vec<Op> = (0..96)
        .map(|i| Op::Insert {
            key: (i % 48) + 1,
            value: i + 1,
        })
        .collect();
    let seed = Seed::from_flat(&ops, 4);
    let cfg = CampaignConfig {
        threads: 4,
        deadline: Duration::from_secs(3),
        ..CampaignConfig::default()
    };

    // Recon campaign: find the shared table-pointer address the scheduler
    // should target (this is what the priority queue does automatically).
    println!("recon campaign to locate the shared table pointer...");
    let recon = run_campaign(&spec, &seed, &cfg, None, None)?;
    let entry = recon
        .shared
        .iter()
        .find(|e| {
            e.load_sites
                .iter()
                .any(|(s, _)| pmrace_runtime::site_label(*s).contains("417"))
                && e.store_sites
                    .iter()
                    .any(|(s, _)| pmrace_runtime::site_label(*s).contains("785"))
        })
        .expect("resize must run in the recon campaign");
    println!("table pointer lives at pool offset {:#x}", entry.off);

    // Force the interleaving: gate the :417 loads until the :785 store.
    let plan = SyncPlan {
        off: entry.off,
        load_sites: entry
            .load_sites
            .iter()
            .filter(|(s, _)| pmrace_runtime::site_label(*s).contains("417"))
            .map(|(s, _)| s.id())
            .collect(),
        store_sites: entry
            .store_sites
            .iter()
            .filter(|(s, _)| pmrace_runtime::site_label(*s).contains("785"))
            .map(|(s, _)| s.id())
            .collect(),
        // The table-pointer swap is a plain store, not a CAS publication.
        cas_sites: Default::default(),
    };
    for round in 0..10u64 {
        let strategy = Arc::new(PmraceStrategy::new(
            plan.clone(),
            4,
            Arc::new(SkipStore::new()),
            SyncTuning::default(),
            round,
        ));
        let res = run_campaign(&spec, &seed, &cfg, Some(strategy), None)?;
        let hit = res.findings.inconsistencies.iter().find(|i| {
            i.candidate.kind == CandidateKind::Inter
                && pmrace_runtime::site_label(i.candidate.write_site).contains("785")
        });
        let Some(rec) = hit else { continue };
        println!("\nround {round}: PM Inter-thread Inconsistency detected!");
        println!("  {rec}");

        // Post-failure demonstration: recover from the captured crash
        // image and count the data loss.
        let img = rec.crash_image.as_ref().expect("image captured");
        let pool = Arc::new(Pool::from_crash_image(img)?);
        let session = Session::new(pool, SessionConfig::default());
        let recovered = (spec.recover)(&session)?;
        let view = session.view(pmrace::pmem::ThreadId(0));
        let mut lost = 0;
        for k in 1..=48u64 {
            if recovered.get(&view, k)?.is_none() {
                lost += 1;
            }
        }
        println!(
            "  after crash + recovery, {lost} of 48 keys are missing \
             (items inserted through the unflushed table pointer are lost)"
        );
        assert!(lost > 0, "the bug must manifest as data loss");
        return Ok(());
    }
    Err("bug 1 did not manifest in 10 forced rounds (try again)".into())
}

//! Extending PMRace with a custom PM checker (§4.3: "implementing other PM
//! checkers is possible by using PMRace's framework").
//!
//! Two checkers run alongside the built-in inconsistency detection:
//!
//! - the bundled [`RedundantFlushChecker`] (flushing already-clean data —
//!   a PM-bandwidth performance bug), and
//! - a custom `FenceStormChecker` defined right here, flagging back-to-back
//!   `sfence` instructions with no stores in between (wasted ordering).
//!
//! Part 1 arms them on a hand-built session. Part 2 does the same thing
//! fleet-wide through the public target API: a [`pmrace::TargetSpec`]
//! carrying an *arm hook* is registered under a new name, and every
//! campaign the fuzzer runs against that name gets the checkers installed
//! automatically — no engine changes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pmrace::pmem::{PersistState, Pool, PoolOpts, ThreadId};
use pmrace::runtime::checker::{AccessEvent, Checker, RedundantFlushChecker};
use pmrace::runtime::report::PerfIssueRecord;
use pmrace::{Session, SessionConfig};
use pmrace_runtime::site;

/// Flags an `sfence` that follows another `sfence` with no intervening
/// store: the second fence orders nothing.
#[derive(Debug, Default)]
struct FenceStormChecker {
    fence_was_last: AtomicBool,
}

impl Checker for FenceStormChecker {
    fn name(&self) -> &'static str {
        "fence-storm"
    }

    fn on_store(&self, _ev: &AccessEvent, _out: &mut Vec<PerfIssueRecord>) {
        self.fence_was_last.store(false, Ordering::Relaxed);
    }

    fn on_sfence(&self, tid: ThreadId, out: &mut Vec<PerfIssueRecord>) {
        if self.fence_was_last.swap(true, Ordering::Relaxed) {
            out.push(PerfIssueRecord {
                checker: self.name(),
                site: site!("custom_checker.sfence"),
                off: 0,
                len: 0,
                what: format!("consecutive sfence by {tid} with no store in between"),
            });
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(
        Arc::new(Pool::new(PoolOpts::small())),
        SessionConfig::default(),
    );
    session.add_checker(Arc::new(RedundantFlushChecker));
    session.add_checker(Arc::new(FenceStormChecker::default()));

    let view = session.view(ThreadId(0));
    let w = site!("example.store");
    let f = site!("example.flush");

    // A well-behaved persist...
    view.store_u64(256u64, 1u64, w)?;
    view.persist(256u64, 8, f)?;
    assert_eq!(session.range_state(256, 8), PersistState::Clean);

    // ...a redundant one (data already clean)...
    view.persist(256u64, 8, f)?;

    // ...and a fence storm (three fences, no stores).
    view.sfence()?;
    view.sfence()?;

    let findings = session.finish();
    println!("performance issues found by the checker framework:");
    for issue in &findings.perf_issues {
        println!("- {issue}");
    }
    assert!(
        findings
            .perf_issues
            .iter()
            .any(|i| i.checker == "redundant-flush"),
        "redundant flush must be flagged"
    );
    assert!(
        findings
            .perf_issues
            .iter()
            .any(|i| i.checker == "fence-storm"),
        "fence storm must be flagged"
    );
    println!("\nboth checkers fired — the framework is extensible without touching the core.");

    // Part 2: the same checkers, armed on every fuzzing campaign via the
    // registry. The arm hook runs right after target construction in each
    // campaign session, so the checkers see the whole fleet's PM traffic.
    pmrace::register_builtins();
    let mut spec = pmrace::target_spec("P-CLHT")
        .expect("built-in")
        .with_arm(|session| {
            session.add_checker(Arc::new(RedundantFlushChecker));
            session.add_checker(Arc::new(FenceStormChecker::default()));
        });
    spec.name = "P-CLHT+checkers";
    pmrace::register_target(spec)?;

    let mut cfg = pmrace::FuzzConfig::new("P-CLHT+checkers");
    cfg.wall_budget = std::time::Duration::from_secs(10);
    cfg.max_campaigns = 60;
    cfg.workers = 2;
    let report = pmrace::Fuzzer::new(cfg)?.run()?;
    let perf: Vec<_> = report
        .bugs
        .iter()
        .filter(|b| matches!(b.kind, pmrace::core::BugKind::Perf))
        .collect();
    println!(
        "\nfuzzing with armed checkers: {} campaigns, {} perf findings",
        report.campaigns,
        perf.len()
    );
    for bug in &perf {
        println!("- {bug}");
    }
    assert!(
        !perf.is_empty(),
        "armed checkers surface performance findings through the stock fuzzer"
    );
    Ok(())
}

//! End-to-end integration: the full detection pipeline rediscovers the
//! paper's headline concurrency bugs when the buggy interleaving is forced
//! (deterministic variant of what the fuzzer's interleaving tier does).

use std::sync::Arc;
use std::time::Duration;

use pmrace::core::{run_campaign, CampaignConfig, Seed};
use pmrace::runtime::report::CandidateKind;
use pmrace::sched::{PmraceStrategy, SkipStore, SyncPlan, SyncTuning};
use pmrace::{target_spec, Op};
use pmrace_runtime::site_label;

fn forced_plan(
    recon: &pmrace::core::CampaignResult,
    read_marker: &str,
    write_marker: &str,
) -> Option<SyncPlan> {
    let entry = recon.shared.iter().find(|e| {
        e.load_sites
            .iter()
            .any(|(s, _)| site_label(*s).contains(read_marker))
            && e.store_sites
                .iter()
                .any(|(s, _)| site_label(*s).contains(write_marker))
    })?;
    Some(SyncPlan {
        off: entry.off,
        load_sites: entry
            .load_sites
            .iter()
            .filter(|(s, _)| site_label(*s).contains(read_marker))
            .map(|(s, _)| s.id())
            .collect(),
        store_sites: entry
            .store_sites
            .iter()
            .filter(|(s, _)| site_label(*s).contains(write_marker))
            .map(|(s, _)| s.id())
            .collect(),
        // These targets publish via plain stores; no CAS retry to stall.
        cas_sites: Default::default(),
    })
}

fn hunt(target: &str, seed: &Seed, read_marker: &str, write_marker: &str, rounds: u64) -> bool {
    let spec = target_spec(target).unwrap();
    let cfg = CampaignConfig {
        threads: 4,
        deadline: Duration::from_secs(3),
        ..CampaignConfig::default()
    };
    let recon = run_campaign(&spec, seed, &cfg, None, None).unwrap();
    let Some(plan) = forced_plan(&recon, read_marker, write_marker) else {
        panic!("recon did not surface the {write_marker} -> {read_marker} address");
    };
    for round in 0..rounds {
        let strategy = Arc::new(PmraceStrategy::new(
            plan.clone(),
            4,
            Arc::new(SkipStore::new()),
            SyncTuning::default(),
            round,
        ));
        let res = run_campaign(&spec, seed, &cfg, Some(strategy), None).unwrap();
        let hit = res.findings.inconsistencies.iter().any(|i| {
            i.candidate.kind == CandidateKind::Inter
                && site_label(i.candidate.write_site).contains(write_marker)
                && site_label(i.candidate.read_site).contains(read_marker)
        });
        if hit {
            return true;
        }
    }
    false
}

#[test]
fn pclht_resize_race_bug1_detected() {
    let ops: Vec<Op> = (0..96)
        .map(|i| Op::Insert {
            key: (i % 48) + 1,
            value: i + 1,
        })
        .collect();
    let seed = Seed::from_flat(&ops, 4);
    assert!(
        hunt("P-CLHT", &seed, "417", "785", 10),
        "bug 1 (insert through unflushed table pointer) not detected"
    );
}

#[test]
fn fastfair_split_race_bug8_detected() {
    let ops: Vec<Op> = (0..96)
        .map(|i| Op::Insert {
            key: (i * 7 % 48) + 1,
            value: i + 1,
        })
        .collect();
    let seed = Seed::from_flat(&ops, 4);
    assert!(
        hunt("FAST-FAIR", &seed, "876", "560", 20),
        "bug 8 (insert through unflushed sibling pointer) not detected"
    );
}

#[test]
fn memcached_value_race_bugs_9_10_detected() {
    // Hot keys + read-modify-writes: incr reads values that set leaves
    // unflushed (the missing-flush window behind bugs 9/10).
    let ops: Vec<Op> = (0..96)
        .map(|i| match i % 3 {
            0 => Op::Insert {
                key: (i % 4) + 1,
                value: i + 1,
            },
            1 => Op::Incr {
                key: (i % 4) + 1,
                by: 1,
            },
            _ => Op::Get { key: (i % 4) + 1 },
        })
        .collect();
    let seed = Seed::from_flat(&ops, 4);
    let spec = target_spec("memcached-pmem").unwrap();
    let cfg = CampaignConfig {
        threads: 4,
        deadline: Duration::from_secs(3),
        ..CampaignConfig::default()
    };
    let mut found = false;
    for _round in 0..10 {
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        found = res.findings.inconsistencies.iter().any(|i| {
            site_label(i.candidate.read_site).contains("2805")
                && (site_label(i.effect_site).contains("4292")
                    || site_label(i.effect_site).contains("4293"))
        });
        if found {
            break;
        }
    }
    assert!(
        found,
        "bugs 9/10 (value written from unflushed value) not detected"
    );
}

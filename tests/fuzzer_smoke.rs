//! Smoke-level integration of the whole fuzzer on every target: short runs
//! must complete, produce coverage, and never panic.

use std::time::Duration;

use pmrace::{all_targets, FuzzConfig, Fuzzer, StrategyKind};

fn quick_cfg(target: &str) -> FuzzConfig {
    pmrace::register_builtins();
    let mut cfg = FuzzConfig::new(target);
    cfg.max_campaigns = 6;
    cfg.wall_budget = Duration::from_secs(20);
    cfg.workers = 2;
    cfg.threads = 2;
    cfg.campaign_deadline = Duration::from_millis(300);
    cfg
}

#[test]
fn every_target_fuzzes_cleanly() {
    for spec in all_targets() {
        let report = Fuzzer::new(quick_cfg(spec.name)).unwrap().run().unwrap();
        assert!(report.campaigns >= 1, "{}: no campaigns ran", spec.name);
        assert!(report.branches > 0, "{}: no branch coverage", spec.name);
        assert_eq!(report.coverage_timeline.len(), report.campaigns);
        assert!(report.execs_per_sec > 0.0);
    }
}

#[test]
fn delay_injection_baseline_runs() {
    let mut cfg = quick_cfg("P-CLHT");
    cfg.strategy = StrategyKind::Delay { max_delay_us: 200 };
    let report = Fuzzer::new(cfg).unwrap().run().unwrap();
    assert!(report.campaigns >= 1);
}

#[test]
fn systematic_baseline_runs() {
    let mut cfg = quick_cfg("clevel");
    cfg.strategy = StrategyKind::Systematic;
    cfg.max_campaigns = 3;
    let report = Fuzzer::new(cfg).unwrap().run().unwrap();
    assert!(report.campaigns >= 1);
}

#[test]
fn ablation_modes_run() {
    for (ie, se) in [(false, true), (true, false)] {
        let mut cfg = quick_cfg("P-CLHT");
        cfg.enable_interleaving_tier = ie;
        cfg.enable_seed_tier = se;
        cfg.workers = 1;
        let report = Fuzzer::new(cfg).unwrap().run().unwrap();
        assert!(
            report.campaigns >= 1,
            "ablation ie={ie} se={se} ran nothing"
        );
    }
}

#[test]
fn corpus_dir_persists_and_reloads_seeds() {
    let dir = std::env::temp_dir().join(format!("pmrace-corpus-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = quick_cfg("clevel");
    cfg.corpus_dir = Some(dir.clone());
    cfg.max_campaigns = 4;
    let _ = Fuzzer::new(cfg).unwrap().run().unwrap();
    let corpus = pmrace::core::corpus::CorpusDir::open(&dir).unwrap();
    assert!(
        !corpus.is_empty().unwrap(),
        "coverage-improving seeds must be saved"
    );
    // A second run consumes the saved corpus without error.
    let mut cfg2 = quick_cfg("clevel");
    cfg2.corpus_dir = Some(dir.clone());
    cfg2.max_campaigns = 2;
    let report = Fuzzer::new(cfg2).unwrap().run().unwrap();
    assert!(report.campaigns >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_checkpoint_mode_runs() {
    let mut cfg = quick_cfg("CCEH");
    cfg.use_checkpoint = false;
    cfg.max_campaigns = 3;
    let report = Fuzzer::new(cfg).unwrap().run().unwrap();
    assert!(report.campaigns >= 1);
}

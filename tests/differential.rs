//! Property-based differential tests: every target behaves like a plain
//! map under sequential operations, and committed data survives crashes.

use std::collections::HashMap;
use std::sync::Arc;

use pmrace::{target_spec, Op, OpResult, Pool, Session, SessionConfig};
use proptest::prelude::*;

/// Sequential op model (no Update for P-CLHT — its seeded Bug 5 leaks the
/// bucket lock on idempotent updates, which is expected buggy behavior, not
/// a differential failure).
#[derive(Debug, Clone, Copy)]
enum MOp {
    Insert(u64, u64),
    Delete(u64),
    Get(u64),
}

fn mop_strategy() -> impl Strategy<Value = MOp> {
    prop_oneof![
        (1u64..20, 1u64..1000).prop_map(|(k, v)| MOp::Insert(k, v)),
        (1u64..20).prop_map(MOp::Delete),
        (1u64..20).prop_map(MOp::Get),
    ]
}

fn check_against_model(target: &str, ops: &[MOp]) -> Result<(), TestCaseError> {
    let spec = target_spec(target).unwrap();
    let session = Session::new(
        Arc::new(Pool::new((spec.pool)())),
        SessionConfig {
            capture_crash_images: false,
            deadline: std::time::Duration::from_secs(30),
            ..SessionConfig::default()
        },
    );
    let t = (spec.init)(&session).unwrap();
    let view = session.view(pmrace::pmem::ThreadId(0));
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            MOp::Insert(k, v) => {
                let res = t.exec(&view, &Op::Insert { key: k, value: v }).unwrap();
                // clevel has bounded probe windows; a Missing insert means
                // "table full", which the model must mirror by skipping.
                if res == OpResult::Done {
                    model.insert(k, v);
                }
            }
            MOp::Delete(k) => {
                let res = t.exec(&view, &Op::Delete { key: k }).unwrap();
                let expected = model.remove(&k).is_some();
                prop_assert_eq!(res == OpResult::Done, expected, "delete {}", k);
            }
            MOp::Get(k) => {
                let res = t.exec(&view, &Op::Get { key: k }).unwrap();
                match model.get(&k) {
                    Some(&v) => prop_assert_eq!(res, OpResult::Found(v), "get {}", k),
                    None => prop_assert_eq!(res, OpResult::Missing, "get {}", k),
                }
            }
        }
    }
    Ok(())
}

/// Crash + recovery: keys inserted (and not deleted) must be findable after
/// recovery. `check_values` is false for memcached-pmem, whose seeded
/// missing-flush bug (bugs 9/10) legitimately loses value bytes.
fn check_durability(target: &str, ops: &[MOp], check_values: bool) -> Result<(), TestCaseError> {
    let spec = target_spec(target).unwrap();
    let session = Session::new(
        Arc::new(Pool::new((spec.pool)())),
        SessionConfig {
            capture_crash_images: false,
            deadline: std::time::Duration::from_secs(30),
            ..SessionConfig::default()
        },
    );
    let t = (spec.init)(&session).unwrap();
    let view = session.view(pmrace::pmem::ThreadId(0));
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            MOp::Insert(k, v) => {
                if t.exec(&view, &Op::Insert { key: k, value: v }).unwrap() == OpResult::Done {
                    model.insert(k, v);
                }
            }
            MOp::Delete(k) => {
                let _ = t.exec(&view, &Op::Delete { key: k }).unwrap();
                model.remove(&k);
            }
            MOp::Get(k) => {
                let _ = t.exec(&view, &Op::Get { key: k }).unwrap();
            }
        }
    }
    let img = session.pool().crash_image().unwrap();
    let pool2 = Arc::new(Pool::from_crash_image(&img).unwrap());
    let s2 = Session::new(
        pool2,
        SessionConfig {
            capture_crash_images: false,
            deadline: std::time::Duration::from_secs(30),
            ..SessionConfig::default()
        },
    );
    let t2 = (spec.recover)(&s2).unwrap();
    let v2 = s2.view(pmrace::pmem::ThreadId(0));
    for (&k, &v) in &model {
        let res = t2.exec(&v2, &Op::Get { key: k }).unwrap();
        if check_values {
            prop_assert_eq!(res, OpResult::Found(v), "key {} after recovery", k);
        } else {
            prop_assert_ne!(res, OpResult::Missing, "key {} lost by recovery", k);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pclht_matches_map_model(ops in prop::collection::vec(mop_strategy(), 1..120)) {
        check_against_model("P-CLHT", &ops)?;
    }

    #[test]
    fn cceh_matches_map_model(ops in prop::collection::vec(mop_strategy(), 1..120)) {
        check_against_model("CCEH", &ops)?;
    }

    #[test]
    fn fastfair_matches_map_model(ops in prop::collection::vec(mop_strategy(), 1..120)) {
        check_against_model("FAST-FAIR", &ops)?;
    }

    #[test]
    fn clevel_matches_map_model(ops in prop::collection::vec(mop_strategy(), 1..120)) {
        check_against_model("clevel", &ops)?;
    }

    #[test]
    fn memkv_matches_map_model(ops in prop::collection::vec(mop_strategy(), 1..120)) {
        check_against_model("memcached-pmem", &ops)?;
    }

    #[test]
    fn pclht_durability(ops in prop::collection::vec(mop_strategy(), 1..80)) {
        check_durability("P-CLHT", &ops, true)?;
    }

    #[test]
    fn cceh_durability(ops in prop::collection::vec(mop_strategy(), 1..80)) {
        check_durability("CCEH", &ops, true)?;
    }

    #[test]
    fn fastfair_durability(ops in prop::collection::vec(mop_strategy(), 1..80)) {
        check_durability("FAST-FAIR", &ops, true)?;
    }

    #[test]
    fn clevel_durability(ops in prop::collection::vec(mop_strategy(), 1..80)) {
        check_durability("clevel", &ops, true)?;
    }

    #[test]
    fn memkv_keys_survive_crash_values_may_not(ops in prop::collection::vec(mop_strategy(), 1..80)) {
        check_durability("memcached-pmem", &ops, false)?;
    }
}

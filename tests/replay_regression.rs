//! The replay regression gate: every checked-in repro artifact in
//! `repros/` must still re-trigger its recorded bug.
//!
//! The corpus covers the paper's 14 Table 2 bugs plus the 6 lock-free
//! suite bugs (built and delta-debug minimized by
//! `repro corpus repros/ --minimize`). A failure here means a change
//! broke either a detector (the bug no longer fires), a target (the
//! seeded bug is gone), or the replayer itself — all regressions.

use pmrace::replay::{replay_corpus, ReplayOptions};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("repros")
}

#[test]
fn checked_in_corpus_covers_table2_and_the_lockfree_suite() {
    let results = replay_corpus(&corpus_dir(), &ReplayOptions::default()).unwrap();
    assert_eq!(
        results.len(),
        20,
        "expected one artifact per corpus bug (14 Table 2 + 6 lock-free), found {}",
        results.len()
    );
    // Every lock-free structure contributes artifacts.
    for target in ["tstack", "hlist", "msq"] {
        assert!(
            results.iter().any(|r| r.key.contains(target)),
            "no {target} artifact in the corpus"
        );
    }
    // The four finding classes are all represented.
    for prefix in ["Inter:", "Intra:", "Sync:", "Candidate:", "Hang"] {
        assert!(
            results.iter().any(|r| r.key.starts_with(prefix)),
            "no {prefix} artifact in the corpus"
        );
    }
}

#[test]
fn every_corpus_artifact_retriggers_its_bug() {
    let results = replay_corpus(&corpus_dir(), &ReplayOptions::default()).unwrap();
    let failures: Vec<String> = results
        .iter()
        .filter(|r| !r.matched)
        .map(|r| {
            format!(
                "{} ({}): {}",
                r.key,
                r.path.display(),
                r.divergence.as_deref().unwrap_or("bug did not re-fire")
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} artifacts no longer reproduce:\n{}",
        failures.len(),
        results.len(),
        failures.join("\n")
    );
}

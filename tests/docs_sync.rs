//! Docs-vs-code sync guards: the user-facing docs enumerate things the
//! code registers (target names, telemetry metric names). These tests
//! fail when someone adds or renames a target or a metric without
//! updating the corresponding doc — string-level checks, deliberately
//! dumb, so they cannot silently drift the way prose can.

use std::fs;
use std::path::Path;

fn repo_file(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Every registered builtin target (both suites) appears, backticked, in
/// README.md's "Bundled targets" table.
#[test]
fn readme_bundled_targets_table_lists_every_registered_target() {
    pmrace::register_builtins();
    pmrace::register_lockfree();
    let readme = repo_file("README.md");
    let table = readme
        .split("## Bundled targets")
        .nth(1)
        .expect("README.md must keep a '## Bundled targets' section")
        .split("\n## ")
        .next()
        .unwrap();
    let missing: Vec<String> = pmrace::all_targets()
        .iter()
        .map(|spec| spec.name.to_owned())
        .filter(|name| !table.contains(&format!("`{name}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "registered targets missing from README.md's Bundled targets table \
         (add a row with the name in backticks): {missing:?}"
    );
}

/// Every telemetry counter, gauge, and histogram name appears verbatim in
/// docs/OBSERVABILITY.md's catalog.
#[test]
fn observability_doc_lists_every_metric_name() {
    let doc = repo_file("docs/OBSERVABILITY.md");
    let mut missing = Vec::new();
    for c in pmrace::telemetry::Counter::ALL {
        if !doc.contains(c.name()) {
            missing.push(format!("counter {}", c.name()));
        }
    }
    for g in pmrace::telemetry::Gauge::ALL {
        if !doc.contains(g.name()) {
            missing.push(format!("gauge {}", g.name()));
        }
    }
    for h in pmrace::telemetry::Histogram::ALL {
        if !doc.contains(h.name()) {
            missing.push(format!("histogram {}", h.name()));
        }
    }
    assert!(
        missing.is_empty(),
        "metric names missing from docs/OBSERVABILITY.md: {missing:?}"
    );
}

/// The docs README links must point at files that exist; a moved doc
/// breaks the trailhead silently otherwise.
#[test]
fn readme_links_performance_and_architecture_docs() {
    let readme = repo_file("README.md");
    for doc in [
        "docs/ARCHITECTURE.md",
        "docs/PERFORMANCE.md",
        "docs/OBSERVABILITY.md",
    ] {
        assert!(readme.contains(doc), "README.md must link {doc}");
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR")).join(doc).exists(),
            "{doc} referenced but missing"
        );
    }
}

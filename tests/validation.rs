//! Integration tests of the post-failure validation pipeline (§4.4):
//! benign inconsistencies are filtered, real bugs survive, whitelisted
//! sites never reach validation.

use std::sync::Arc;
use std::time::Duration;

use pmrace::core::validate::{validate_inconsistency, validate_sync};
use pmrace::core::{run_campaign, CampaignConfig, Seed, Verdict};
use pmrace::{target_spec, Op, Pool, Session, SessionConfig};
use pmrace_runtime::site_label;

fn insert_seed(n: u64, threads: usize) -> Seed {
    let ops: Vec<Op> = (1..=n).map(|k| Op::Insert { key: k, value: k }).collect();
    Seed::from_flat(&ops, threads)
}

#[test]
fn pclht_sync_bug2_survives_validation_and_hangs_post_restart() {
    let spec = target_spec("P-CLHT").unwrap();
    let cfg = CampaignConfig {
        threads: 1,
        deadline: Duration::from_secs(5),
        ..CampaignConfig::default()
    };
    let res = run_campaign(&spec, &insert_seed(130, 1), &cfg, None, None).unwrap();
    let bucket = res
        .findings
        .sync_updates
        .iter()
        .find(|u| u.var_name == "clht.bucket_lock")
        .expect("bucket lock update recorded");
    assert_eq!(validate_sync(&spec, bucket), Verdict::Bug);

    // The consequence (Table 2: "hang"): recover from the crash image and
    // touch the locked bucket — the access must time out.
    let img = bucket.crash_image.as_ref().unwrap();
    let pool = Arc::new(Pool::from_crash_image(img).unwrap());
    let session = Session::new(
        pool,
        SessionConfig {
            deadline: Duration::from_millis(200),
            ..SessionConfig::default()
        },
    );
    let recovered = (spec.recover)(&session).unwrap();
    let view = session.view(pmrace::pmem::ThreadId(0));
    let hung = (1..=64u64).any(|k| {
        matches!(
            recovered.exec(&view, &Op::Insert { key: k, value: 1 }),
            Err(pmrace::runtime::RtError::Timeout)
        )
    });
    assert!(hung, "some bucket must hang behind the never-released lock");
}

#[test]
fn pclht_global_locks_validate_as_false_positives() {
    let spec = target_spec("P-CLHT").unwrap();
    let cfg = CampaignConfig {
        threads: 1,
        deadline: Duration::from_secs(5),
        ..CampaignConfig::default()
    };
    let res = run_campaign(&spec, &insert_seed(130, 1), &cfg, None, None).unwrap();
    for name in ["clht.resize_lock", "clht.gc_lock", "clht.table_status"] {
        let upd = res
            .findings
            .sync_updates
            .iter()
            .find(|u| u.var_name == name)
            .unwrap_or_else(|| panic!("{name} update must be recorded by a resize workload"));
        assert_eq!(
            validate_sync(&spec, upd),
            Verdict::ValidatedFp,
            "{name} is reinitialized by recovery and must validate benign"
        );
    }
}

#[test]
fn cceh_bug7_directory_doubling_survives_validation() {
    let spec = target_spec("CCEH").unwrap();
    let cfg = CampaignConfig {
        threads: 1,
        deadline: Duration::from_secs(8),
        ..CampaignConfig::default()
    };
    let res = run_campaign(&spec, &insert_seed(200, 1), &cfg, None, None).unwrap();
    let rec = res
        .findings
        .inconsistencies
        .iter()
        .find(|i| site_label(i.candidate.write_site).contains("CCEH.h:165"))
        .expect("directory doubling must raise the bug-7 intra inconsistency");
    assert_eq!(validate_inconsistency(&spec, rec), Verdict::Bug);
}

#[test]
fn clevel_construction_is_whitelisted_not_buggy() {
    let spec = target_spec("clevel").unwrap();
    let res = run_campaign(
        &spec,
        &insert_seed(10, 2),
        &CampaignConfig::default(),
        None,
        None,
    )
    .unwrap();
    assert!(!res.findings.inconsistencies.is_empty());
    for rec in &res.findings.inconsistencies {
        assert!(
            rec.whitelisted,
            "clevel construction record not whitelisted: {rec}"
        );
        assert_eq!(validate_inconsistency(&spec, rec), Verdict::WhitelistedFp);
    }
}

#[test]
fn memcached_link_effects_validate_benign_but_value_effects_do_not() {
    let spec = target_spec("memcached-pmem").unwrap();
    let ops: Vec<Op> = (0..80)
        .map(|i| match i % 4 {
            0 => Op::Insert {
                key: (i % 6) + 1,
                value: i + 1,
            },
            1 => Op::Get { key: (i % 6) + 1 },
            2 => Op::Incr {
                key: (i % 6) + 1,
                by: 1,
            },
            _ => Op::Delete { key: (i % 6) + 1 },
        })
        .collect();
    let seed = Seed::from_flat(&ops, 4);
    let mut link_fp = 0;
    let mut value_bug = 0;
    for _ in 0..12 {
        let res = run_campaign(&spec, &seed, &CampaignConfig::default(), None, None).unwrap();
        for rec in &res.findings.inconsistencies {
            let effect = site_label(rec.effect_site);
            let verdict = validate_inconsistency(&spec, rec);
            if effect.contains("store_p_next") || effect.contains("store_n_prev") {
                if verdict == Verdict::ValidatedFp {
                    link_fp += 1;
                }
            } else if (effect.contains("4292") || effect.contains("4293"))
                && verdict == Verdict::Bug
            {
                value_bug += 1;
            }
        }
        if link_fp > 0 && value_bug > 0 {
            break;
        }
    }
    assert!(
        link_fp > 0,
        "index rebuild must validate link-field effects as FPs"
    );
    assert!(
        value_bug > 0,
        "value effects must survive validation as bugs"
    );
}

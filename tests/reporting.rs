//! Integration of the reporting pipeline: fuzz → unique bugs → report
//! files → seed replay reproduces the finding.

use std::time::Duration;

use pmrace::core::report_io;
use pmrace::core::{run_campaign, CampaignConfig};
use pmrace::{target_spec, FuzzConfig, Fuzzer, Seed};

#[test]
fn reports_round_trip_through_replay() {
    pmrace::register_builtins();
    let mut cfg = FuzzConfig::new("P-CLHT");
    cfg.max_campaigns = 60;
    cfg.wall_budget = Duration::from_secs(30);
    cfg.workers = 4;
    let report = Fuzzer::new(cfg).unwrap().run().unwrap();
    assert!(!report.bugs.is_empty(), "P-CLHT must yield bugs quickly");

    let dir = std::env::temp_dir().join(format!("pmrace-reports-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let paths = report_io::write_reports(&dir, &report).unwrap();
    assert_eq!(paths.len(), report.bugs.len());

    // Every report's seed must parse and replay cleanly.
    let spec = target_spec("P-CLHT").unwrap();
    let mut replayed = 0;
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap();
        let Some(seed_text) = text.rsplit("driver thread):\n").next() else {
            continue;
        };
        let Ok(seed) = Seed::parse(seed_text) else {
            continue; // bugs recorded without a seed (e.g. hang-only text)
        };
        let cfg = CampaignConfig {
            threads: seed.num_threads(),
            deadline: Duration::from_secs(2),
            ..CampaignConfig::default()
        };
        let res = run_campaign(&spec, &seed, &cfg, None, None).unwrap();
        // Replays are not deterministic interleaving-wise, but the seed
        // must at least execute and exercise the checkers.
        assert!(res.duration > Duration::ZERO);
        replayed += 1;
    }
    assert!(replayed > 0, "at least one report seed must replay");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inter_bug_reports_carry_diagnostics() {
    pmrace::register_builtins();
    let mut cfg = FuzzConfig::new("P-CLHT");
    cfg.max_campaigns = 120;
    cfg.wall_budget = Duration::from_secs(45);
    cfg.workers = 4;
    let report = Fuzzer::new(cfg).unwrap().run().unwrap();
    if let Some(bug) = report
        .bugs
        .iter()
        .find(|b| b.kind == pmrace::core::BugKind::Inter)
    {
        let text = report_io::render_report(bug);
        assert!(text.contains("write code:"), "{text}");
        assert!(
            text.contains("785"),
            "inter bug names the writing store: {text}"
        );
        assert!(
            text.contains("recent PM accesses"),
            "trace block attached: {text}"
        );
        assert!(text.contains("triggering seed"));
    }
}

//! Determinism contract of the single-worker fuzzer: identical
//! configuration and RNG seed must discover the identical bug set.
//!
//! This is the property record/replay is built on — if the fuzzer itself
//! drifted between identically-seeded runs, a recorded schedule would be
//! meaningless. Systematic exploration with one worker removes the two
//! sanctioned nondeterminism sources (wall-clock scheduling jitter across
//! workers, OS thread interleaving inside the pmrace scheduler's waits),
//! so everything that remains must be a function of the seed.

use std::collections::BTreeSet;
use std::time::Duration;

use pmrace::{FuzzConfig, Fuzzer, StrategyKind};

fn deterministic_cfg_for(target: &str, rng_seed: u64) -> FuzzConfig {
    let mut cfg = FuzzConfig::new(target);
    cfg.strategy = StrategyKind::Systematic;
    cfg.workers = 1;
    cfg.threads = 2;
    cfg.max_campaigns = 8;
    cfg.wall_budget = Duration::from_secs(60);
    cfg.campaign_deadline = Duration::from_millis(300);
    cfg.rng_seed = rng_seed;
    cfg
}

fn deterministic_cfg(rng_seed: u64) -> FuzzConfig {
    deterministic_cfg_for("P-CLHT", rng_seed)
}

fn bug_set(rng_seed: u64) -> BTreeSet<(String, String, String)> {
    pmrace::register_builtins();
    let report = Fuzzer::new(deterministic_cfg(rng_seed))
        .unwrap()
        .run()
        .unwrap();
    report.bug_triples.into_iter().collect()
}

#[test]
fn identical_seeds_find_identical_bug_triples() {
    let first = bug_set(42);
    let second = bug_set(42);
    assert_eq!(
        first, second,
        "two identically-seeded single-worker runs diverged"
    );
}

/// The contract must also hold for targets whose control flow is CAS-retry
/// loops rather than locks: the scheduler's retry decision points consume
/// deterministic RNG streams, so a lock-free target's bug set is equally
/// a pure function of the seed.
#[test]
fn identical_seeds_find_identical_lockfree_bug_triples() {
    pmrace::register_lockfree();
    let run = || -> BTreeSet<(String, String, String)> {
        let report = Fuzzer::new(deterministic_cfg_for("treiber-stack", 7))
            .unwrap()
            .run()
            .unwrap();
        report.bug_triples.into_iter().collect()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "two identically-seeded single-worker treiber-stack runs diverged"
    );
}

/// Everything a `UniqueBug` reports except wall-clock timing (which is the
/// one sanctioned nondeterminism in a report).
fn bug_identities(report: &pmrace::core::FuzzReport) -> BTreeSet<(String, String, String, String)> {
    report
        .bugs
        .iter()
        .map(|b| {
            (
                format!("{}", b.kind),
                b.write_label.clone(),
                b.read_label.clone(),
                b.effect_label.clone(),
            )
        })
        .collect()
}

/// The validation verdict cache only memoizes pure functions of its key, so
/// turning it off may change how many recovery executions run but never
/// which unique bugs come out.
#[test]
fn validation_cache_does_not_change_the_bug_set() {
    // Both runs live in one test because the cache toggle is
    // process-global; running them back to back keeps each run's setting
    // stable for its whole duration.
    pmrace::register_builtins();
    let run = |cache: bool| {
        let mut cfg = deterministic_cfg(42);
        cfg.validation_cache = cache;
        Fuzzer::new(cfg).unwrap().run().unwrap()
    };
    let with_cache = run(true);
    let without_cache = run(false);
    assert_eq!(
        with_cache.bug_triples.iter().collect::<BTreeSet<_>>(),
        without_cache.bug_triples.iter().collect::<BTreeSet<_>>(),
        "verdict memoization changed the surviving bug triples"
    );
    assert_eq!(
        bug_identities(&with_cache),
        bug_identities(&without_cache),
        "verdict memoization changed the unique-bug set"
    );
}

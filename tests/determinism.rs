//! Determinism contract of the single-worker fuzzer: identical
//! configuration and RNG seed must discover the identical bug set.
//!
//! This is the property record/replay is built on — if the fuzzer itself
//! drifted between identically-seeded runs, a recorded schedule would be
//! meaningless. Systematic exploration with one worker removes the two
//! sanctioned nondeterminism sources (wall-clock scheduling jitter across
//! workers, OS thread interleaving inside the pmrace scheduler's waits),
//! so everything that remains must be a function of the seed.

use std::collections::BTreeSet;
use std::time::Duration;

use pmrace::{FuzzConfig, Fuzzer, StrategyKind};

fn deterministic_cfg(rng_seed: u64) -> FuzzConfig {
    let mut cfg = FuzzConfig::new("P-CLHT");
    cfg.strategy = StrategyKind::Systematic;
    cfg.workers = 1;
    cfg.threads = 2;
    cfg.max_campaigns = 8;
    cfg.wall_budget = Duration::from_secs(60);
    cfg.campaign_deadline = Duration::from_millis(300);
    cfg.rng_seed = rng_seed;
    cfg
}

fn bug_set(rng_seed: u64) -> BTreeSet<(String, String, String)> {
    let report = Fuzzer::new(deterministic_cfg(rng_seed))
        .unwrap()
        .run()
        .unwrap();
    report.bug_triples.into_iter().collect()
}

#[test]
fn identical_seeds_find_identical_bug_triples() {
    let first = bug_set(42);
    let second = bug_set(42);
    assert_eq!(
        first, second,
        "two identically-seeded single-worker runs diverged"
    );
}

//! Cross-crate semantics tests: PM substrate edge cases observed through
//! the full instrumented stack.

use std::sync::Arc;

use pmrace::pmem::{PersistState, Pool, PoolOpts, SiteTag, ThreadId};
use pmrace::runtime::report::CandidateKind;
use pmrace::{Session, SessionConfig};
use pmrace_runtime::site;

const T0: ThreadId = ThreadId(0);
const T1: ThreadId = ThreadId(1);
const TAG: SiteTag = SiteTag(1);

#[test]
fn interleaved_flushes_from_two_threads_persist_independently() {
    let p = Pool::new(PoolOpts::small());
    p.store_u64(64, 1, T0, TAG).unwrap();
    p.store_u64(128, 2, T1, TAG).unwrap();
    p.clwb(64, 8, T0).unwrap();
    p.clwb(128, 8, T1).unwrap();
    // Only T1 fences: only T1's write-back completes.
    p.sfence(T1).unwrap();
    let img = p.crash_image().unwrap();
    assert_eq!(img.load_u64(64).unwrap(), 0);
    assert_eq!(img.load_u64(128).unwrap(), 2);
    assert_eq!(p.meta_at(64).state, PersistState::Flushing);
    assert_eq!(p.meta_at(128).state, PersistState::Clean);
}

#[test]
fn eviction_closes_candidate_windows() {
    use rand::SeedableRng;
    let pool = Arc::new(Pool::new(PoolOpts::small()));
    let session = Session::new(Arc::clone(&pool), SessionConfig::default());
    let w = session.view(T0);
    let r = session.view(T1);
    w.store_u64(4096u64, 7u64, site!("sem.w")).unwrap();
    // Hardware eviction persists the line before the reader arrives.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    assert!(pool.evict_random(&mut rng).is_some());
    let x = r.load_u64(4096u64, site!("sem.r")).unwrap();
    assert!(!x.is_tainted(), "evicted (persisted) data is clean to read");
    assert!(session.finish().candidates.is_empty());
}

#[test]
fn writer_identity_survives_partial_line_flush() {
    // Two threads write different words of the same cache line; a clwb by
    // one covers the line, but unfenced state still loses both.
    let p = Pool::new(PoolOpts::small());
    p.store_u64(0, 10, T0, SiteTag(7)).unwrap();
    p.store_u64(8, 20, T1, SiteTag(8)).unwrap();
    let (_, info) = p.load_u64(8).unwrap();
    assert_eq!(info.writer, T1);
    assert_eq!(info.tag, SiteTag(8));
    p.clwb(0, 8, T0).unwrap(); // whole line captured
    let img = p.crash_image().unwrap();
    assert_eq!(img.load_u64(0).unwrap(), 0, "no fence yet");
    p.sfence(T0).unwrap();
    let img = p.crash_image().unwrap();
    assert_eq!(img.load_u64(0).unwrap(), 10);
    assert_eq!(img.load_u64(8).unwrap(), 20, "line flush covers both words");
}

#[test]
fn intra_then_inter_candidates_have_distinct_identities() {
    let session = Session::new(
        Arc::new(Pool::new(PoolOpts::small())),
        SessionConfig::default(),
    );
    let a = session.view(T0);
    let b = session.view(T1);
    a.store_u64(4096u64, 1u64, site!("sem2.w")).unwrap();
    let _ = a.load_u64(4096u64, site!("sem2.r")).unwrap(); // intra
    let _ = b.load_u64(4096u64, site!("sem2.r")).unwrap(); // inter, same sites
    let f = session.finish();
    assert_eq!(
        f.candidates.len(),
        2,
        "kind participates in candidate identity"
    );
    assert_eq!(f.candidates_of(CandidateKind::Intra), 1);
    assert_eq!(f.candidates_of(CandidateKind::Inter), 1);
}

#[test]
fn output_of_untainted_data_is_never_flagged() {
    let session = Session::new(
        Arc::new(Pool::new(PoolOpts::small())),
        SessionConfig::default(),
    );
    let v = session.view(T0);
    v.ntstore_u64(4096u64, 5u64, site!("sem3.w")).unwrap();
    let clean = v.load_bytes(4096u64, 8, site!("sem3.r")).unwrap();
    v.output(&clean, site!("sem3.reply"));
    assert!(session.finish().inconsistencies.is_empty());
}

#[test]
fn range_state_summarizes_worst_granule() {
    let session = Session::new(
        Arc::new(Pool::new(PoolOpts::small())),
        SessionConfig::default(),
    );
    let v = session.view(T0);
    v.ntstore_u64(4096u64, 1u64, site!("sem4.a")).unwrap(); // clean
    v.store_u64(4104u64, 2u64, site!("sem4.b")).unwrap(); // dirty
    assert_eq!(session.range_state(4096, 16), PersistState::Dirty);
    v.clwb(4104u64, 8, site!("sem4.flush")).unwrap();
    assert_eq!(session.range_state(4096, 16), PersistState::Flushing);
    v.sfence().unwrap();
    assert_eq!(session.range_state(4096, 16), PersistState::Clean);
}

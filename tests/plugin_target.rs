//! End-to-end proof of the plugin boundary (the tentpole of the target-API
//! extraction): a workload the workspace has never heard of — the
//! persistent MPSC queue in `examples/mpsc_queue/target.rs` — is
//! registered purely through the public `pmrace` facade, fuzzed with the
//! stock fuzzer, has its two planted inter-thread inconsistencies found
//! *and* post-failure-validated, and records repro artifacts that replay
//! through `pmrace-replay`'s registry-resolved path.
//!
//! Nothing here touches `crates/core` or the built-in registry: if this
//! test compiles and passes, the target API is genuinely pluggable.

use std::sync::{Arc, Once};
use std::time::Duration;

use pmrace::sched::DelayStrategy;

use pmrace::core::validate::validate_inconsistency;
use pmrace::core::{run_campaign, BugKind, CampaignConfig, Verdict};
use pmrace::replay::{replay, Recorder, ReplayOptions, ReproStore};
use pmrace::{FuzzConfig, Fuzzer, Op, Seed};

#[path = "../examples/mpsc_queue/target.rs"]
mod target;

/// All tests in this binary share one process-global registry.
fn register() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| pmrace::register_target(target::SPEC).expect("unique name"));
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pmrace-plugin-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A contended enqueue/dequeue mix across 4 threads: producers race the
/// consumer on `TAIL` and on slot payloads.
fn contended_seed() -> Seed {
    let ops: Vec<Op> = (0..48u64)
        .map(|i| match i % 3 {
            0 | 1 => Op::Insert {
                key: 1 + i % 4,
                value: i % 13 + 1,
            },
            _ => Op::Delete { key: 1 + i % 4 },
        })
        .collect();
    Seed::from_flat(&ops, 4)
}

/// The registry is the only integration point: resolving the plugin by
/// name works, and the spec round-trips with its custom seed grammar.
#[test]
fn plugin_resolves_by_name_with_its_grammar() {
    register();
    let spec = pmrace::resolve_target("mpsc-queue").expect("registered via public API");
    assert_eq!(spec.name, "mpsc-queue");
    assert_eq!(spec.hints.weights.update, 0, "queues have no keyed update");
    assert!(pmrace::api::all_targets()
        .iter()
        .any(|s| s.name == "mpsc-queue"));
}

/// Both planted bugs are detected by a direct campaign and survive
/// post-failure validation: recovery rewinds the cursors but never heals
/// the durable log cells. Delay injection overlaps the consumer with the
/// producers (a strategy-less run can drain the consumer thread before
/// any producer publishes).
#[test]
fn both_planted_bugs_validate_as_bugs() {
    register();
    let spec = pmrace::resolve_target("mpsc-queue").unwrap();
    let cfg = CampaignConfig {
        threads: 4,
        deadline: Duration::from_secs(5),
        ..CampaignConfig::default()
    };
    let seed = contended_seed();
    let mut tail_bug = false;
    let mut slot_bug = false;
    for round in 0..20u64 {
        let strategy: Arc<dyn pmrace::runtime::strategy::InterleaveStrategy> =
            Arc::new(DelayStrategy::new(Duration::from_micros(200), round));
        let res = run_campaign(&spec, &seed, &cfg, Some(strategy), None).unwrap();
        for rec in &res.findings.inconsistencies {
            let write = pmrace::runtime::site_label(rec.candidate.write_site);
            let is_tail = write.contains("mpsc_queue.c:88");
            let is_slot = write.contains("mpsc_queue.c:97");
            if (is_tail && !tail_bug || is_slot && !slot_bug)
                && validate_inconsistency(&spec, rec) == Verdict::Bug
            {
                tail_bug |= is_tail;
                slot_bug |= is_slot;
            }
        }
        if tail_bug && slot_bug {
            break;
        }
    }
    assert!(tail_bug, "unflushed-tail inconsistency validates as a bug");
    assert!(slot_bug, "unflushed-slot inconsistency validates as a bug");
}

/// The stock fuzzer, pointed at the plugin by name, finds both planted
/// bugs and records repro artifacts that replay through the
/// registry-resolved `pmrace-replay` path.
#[test]
fn fuzzer_finds_plugin_bugs_and_repros_replay() {
    register();
    let dir = tmpdir("e2e");
    let recorder = Recorder::new("mpsc-queue", ReproStore::open(&dir).unwrap());
    let mut cfg = FuzzConfig::new("mpsc-queue");
    cfg.workers = 2;
    cfg.threads = 4;
    cfg.max_campaigns = 300;
    cfg.wall_budget = Duration::from_secs(60);
    cfg.rng_seed = 11;
    cfg.record = Some(recorder.sink());
    let report = Fuzzer::new(cfg).unwrap().run().unwrap();

    assert_eq!(report.target, "mpsc-queue");
    let planted = |label: &str| {
        report
            .bugs
            .iter()
            .find(|b| b.write_label.contains(label))
            .unwrap_or_else(|| panic!("planted bug {label} not in {:?}", report.bugs))
    };
    let tail = planted("mpsc_queue.c:88");
    assert_eq!(tail.kind, BugKind::Inter);
    assert_eq!(tail.verdict, Verdict::Bug);
    assert!(tail.effect_label.contains("mpsc_queue.c:138"));
    let slot = planted("mpsc_queue.c:97");
    assert_eq!(slot.kind, BugKind::Inter);
    assert_eq!(slot.verdict, Verdict::Bug);
    assert!(slot.effect_label.contains("mpsc_queue.c:149"));

    // The recorder captured artifacts for the findings; each one names
    // the plugin target and replays through the public pipeline.
    assert!(recorder.recorded() > 0, "new findings must be recorded");
    assert!(recorder.errors().is_empty(), "{:?}", recorder.errors());
    let stored = recorder.store().load_all().unwrap();
    let mut matched = 0usize;
    let mut attempted = 0usize;
    for (_, repro) in stored.iter().take(4) {
        assert_eq!(repro.target, "mpsc-queue");
        attempted += 1;
        let outcome = replay(repro, &ReplayOptions::default()).unwrap();
        if outcome.matched {
            matched += 1;
        }
    }
    assert!(attempted > 0);
    assert!(
        matched > 0,
        "at least one plugin repro re-fires under strict replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end checks of the observability layer: a real fuzzing run with
//! telemetry enabled must emit a schema-valid `telemetry.json` whose
//! numbers are consistent with the `FuzzReport`, and phase totals must be
//! plausible against wall-clock time.
//!
//! The telemetry registry is process-global, so this file keeps everything
//! in ONE test function (each `tests/*.rs` file is its own process, which
//! isolates us from the rest of the suite).

use std::time::Duration;

use pmrace::telemetry;
use pmrace::{FuzzConfig, Fuzzer};

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("pmrace-telemetry-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn fuzz_run_emits_schema_valid_consistent_telemetry() {
    let dir = tmpdir();
    pmrace::register_builtins();
    let mut cfg = FuzzConfig::new("P-CLHT");
    cfg.max_campaigns = 6;
    cfg.workers = 2;
    cfg.threads = 2;
    cfg.wall_budget = Duration::from_secs(30);
    cfg.campaign_deadline = Duration::from_millis(300);
    cfg.telemetry_dir = Some(dir.clone());
    let wall = std::time::Instant::now();
    let report = Fuzzer::new(cfg).unwrap().run().unwrap();
    let wall_us = wall.elapsed().as_micros() as u64;

    // The snapshot file exists and validates against the documented schema
    // (every cataloged name present, no stray names, well-formed shapes).
    let text = std::fs::read_to_string(dir.join("telemetry.json")).unwrap();
    telemetry::snapshot::validate_snapshot_text(&text).unwrap();
    let snap = telemetry::Snapshot::capture(&|_| None);
    let c = |name: &str| {
        snap.counter(name)
            .unwrap_or_else(|| panic!("counter {name}"))
    };

    // Counter consistency with the FuzzReport. exec.campaigns counts every
    // finished campaign in the process — at least the report's (validation
    // and checkpoint sessions execute outside campaign accounting).
    assert!(report.campaigns >= 1);
    assert!(
        c("exec.campaigns") >= report.campaigns as u64,
        "exec.campaigns {} < report.campaigns {}",
        c("exec.campaigns"),
        report.campaigns
    );
    let pm_total =
        c("pm.loads") + c("pm.stores") + c("pm.ntstores") + c("pm.flushes") + c("pm.fences");
    assert!(
        pm_total >= report.pm_accesses,
        "telemetry pm total {pm_total} < report pm_accesses {}",
        report.pm_accesses
    );
    assert!(c("pm.loads") > 0);
    assert!(c("pm.flushes") > 0);
    assert!(c("checkpoint.creates") >= 1);

    // Phase totals vs wall clock: the summed execution total cannot exceed
    // wall * workers (each worker runs campaigns sequentially).
    let exec = snap.phase("execution").expect("execution phase present");
    assert!(
        exec.count >= report.campaigns as u64,
        "execution spans {} < campaigns {}",
        exec.count,
        report.campaigns
    );
    assert!(exec.total_us > 0);
    assert!(
        exec.total_us <= wall_us.saturating_mul(2).max(1),
        "execution total {}us exceeds wall {wall_us}us x 2 workers",
        exec.total_us
    );
    let restore = snap.phase("checkpoint_restore").unwrap();
    assert_eq!(restore.count, c("checkpoint.restores"));
    let emit = snap.phase("report_emit").unwrap();
    assert_eq!(emit.count, 1, "exactly one report was emitted");

    // The trace file is present with a meta line and parseable span lines.
    let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
    let mut lines = trace.lines();
    let meta = lines.next().expect("meta line");
    assert!(meta.contains("\"type\": \"meta\""), "{meta}");
    let spans = lines.count();
    assert!(spans > 0, "at least one span buffered");

    let _ = std::fs::remove_dir_all(&dir);
}

//! Equivalence contracts of the O(dirty) outer loop: the delta restore and
//! copy-on-write crash-image paths must be observationally identical to the
//! full-copy paths they replace — same volatile and persistent images, same
//! granule metadata, same captured crash state — for any workload.

use std::sync::Arc;

use pmrace::pmem::{CrashImage, Pool, PoolOpts, RestoreMode, SiteTag, ThreadId};
use pmrace::{Session, SessionConfig};
use pmrace_runtime::site;

const T0: ThreadId = ThreadId(0);
const TAG: SiteTag = SiteTag(1);

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A pseudo-random but fully deterministic campaign-shaped workload: a mix
/// of stores, non-temporal stores, flushes, and fences from four threads.
fn apply_workload(p: &Pool, round: u64) {
    let mut s = 0x5eed ^ round;
    let granules = p.size() as u64 / 8;
    for _ in 0..200 {
        let r = lcg(&mut s);
        let off = (r % granules) * 8;
        let t = ThreadId((r >> 8) as u32 % 4);
        let tag = SiteTag((r % 100) as u32 + 1);
        match r % 5 {
            0 | 1 => {
                p.store_u64(off, r, t, tag).unwrap();
            }
            2 => {
                p.ntstore_u64(off, r, t, tag).unwrap();
            }
            3 => {
                p.store_u64(off, r, t, tag).unwrap();
                p.clwb(off, 8, t).unwrap();
            }
            _ => p.sfence(t).unwrap(),
        }
    }
    p.persist(0, 64, T0).unwrap();
}

/// Full observable-state comparison: persistent image, volatile image, and
/// per-granule metadata (state, writer, tag, sequence), plus the derived
/// views campaigns consume.
fn assert_pools_identical(a: &Pool, b: &Pool, when: &str) {
    assert_eq!(a.size(), b.size());
    assert_eq!(
        a.crash_image().unwrap(),
        b.crash_image().unwrap(),
        "persistent images differ {when}"
    );
    for off in (0..a.size() as u64).step_by(8) {
        assert_eq!(
            a.load_u64(off).unwrap().0,
            b.load_u64(off).unwrap().0,
            "volatile word at {off} differs {when}"
        );
        assert_eq!(
            a.meta_at(off),
            b.meta_at(off),
            "granule meta at {off} differs {when}"
        );
    }
    assert_eq!(
        a.unpersisted_regions(),
        b.unpersisted_regions(),
        "unpersisted regions differ {when}"
    );
    assert_eq!(a.store_seq(), b.store_seq(), "store seq differs {when}");
}

#[test]
fn restore_delta_is_byte_identical_to_full_restore() {
    let src = Pool::new(PoolOpts::with_size(1 << 16));
    for k in 0..64u64 {
        src.ntstore_u64(k * 72, k + 1, T0, TAG).unwrap();
    }
    let snap = src.snapshot();
    let full = Pool::new(PoolOpts::with_size(src.size()));
    full.restore(&snap).unwrap();
    let delta = Pool::new(PoolOpts::with_size(src.size()));
    delta.restore(&snap).unwrap();

    for round in 0..6u64 {
        apply_workload(&full, round);
        apply_workload(&delta, round);
        assert_pools_identical(&full, &delta, "after identical workloads");
        full.restore(&snap).unwrap();
        let mode = delta.restore_delta(&snap, usize::MAX).unwrap();
        assert!(
            matches!(mode, RestoreMode::Delta { granules } if granules > 0),
            "round {round}: expected the delta path, got {mode:?}"
        );
        assert_pools_identical(&full, &delta, "after full vs delta restore");
    }

    // The threshold fallback (dirty set too large for delta) must be just
    // as invisible.
    apply_workload(&full, 99);
    apply_workload(&delta, 99);
    full.restore(&snap).unwrap();
    assert_eq!(delta.restore_delta(&snap, 0).unwrap(), RestoreMode::Full);
    assert_pools_identical(&full, &delta, "after threshold fallback");
}

#[test]
fn cow_crash_images_match_eager_captures_through_the_session() {
    // Identical starting state built two ways: `cow` is restored from a
    // snapshot (so captures ride the shared-base overlay path), `eager`
    // never met a snapshot (so captures copy the whole image). The same
    // instrumented workload must produce byte-identical crash images at
    // every capture point.
    let init = |p: &Pool| {
        for k in 0..32u64 {
            p.ntstore_u64(4096 + k * 8, k + 1, T0, TAG).unwrap();
        }
    };
    let src = Pool::new(PoolOpts::with_size(1 << 16));
    init(&src);
    let snap = src.snapshot();
    let cow = Arc::new(Pool::new(PoolOpts::with_size(src.size())));
    cow.restore(&snap).unwrap();
    let eager = Arc::new(Pool::new(PoolOpts::with_size(src.size())));
    init(&eager);

    let run = |pool: &Arc<Pool>| -> Vec<CrashImage> {
        let session = Session::new(Arc::clone(pool), SessionConfig::default());
        let a = session.view(ThreadId(0));
        let b = session.view(ThreadId(1));
        let mut images = Vec::new();
        for i in 0..24u64 {
            let off = 4096 + (i % 40) * 8;
            match i % 4 {
                0 => a.store_u64(off, i + 100, site!("equiv.w")).unwrap(),
                1 => {
                    let _ = b.load_u64(off, site!("equiv.r")).unwrap();
                }
                2 => a.clwb(off, 8, site!("equiv.flush")).unwrap(),
                _ => a.sfence().unwrap(),
            }
            images.push(pool.crash_image().unwrap());
        }
        images
    };

    let cow_images = run(&cow);
    let eager_images = run(&eager);
    assert_eq!(cow_images.len(), eager_images.len());
    for (i, (c, e)) in cow_images.iter().zip(&eager_images).enumerate() {
        assert_eq!(c, e, "crash image at capture point {i} diverged");
        assert_eq!(e.overlay_bytes(), 0, "eager pool must capture densely");
    }
    assert!(
        cow_images.iter().any(|c| c.overlay_bytes() > 0),
        "restored pool never took the copy-on-write capture path"
    );
}

//! Fleet-level integration: a multi-worker run must exchange seeds across
//! workers through the shared pool, judge novelty against one shared
//! coverage frontier, keep the sharded ledger's bookkeeping exact, still
//! find the paper's Table 2 bugs — and the `workers=1` fleet path must
//! preserve the single-worker determinism contract (fleet membership adds
//! no RNG draws and a lone worker has no sibling stripes to import from).

use std::collections::BTreeSet;
use std::time::Duration;

use pmrace::core::BugKind;
use pmrace::{telemetry, FuzzConfig, Fuzzer, StrategyKind};

#[test]
fn four_worker_fleet_finds_the_paper_bugs_and_exchanges_seeds() {
    pmrace::register_builtins();
    telemetry::set_enabled(true);
    let mut cfg = FuzzConfig::new("P-CLHT");
    cfg.workers = 4;
    cfg.threads = 2;
    cfg.max_campaigns = 64;
    cfg.wall_budget = Duration::from_secs(120);
    cfg.campaign_deadline = Duration::from_millis(400);
    let report = Fuzzer::new(cfg).unwrap().run().unwrap();

    // Table 2 (P-CLHT rows): the resize path's intra-thread inconsistency
    // and the persistent-lock sync bugs must both surface under a fleet.
    let kinds: BTreeSet<_> = report.bugs.iter().map(|b| b.kind).collect();
    assert!(
        kinds.contains(&BugKind::Intra),
        "P-CLHT intra bug missing under workers=4: {kinds:?}"
    );
    assert!(
        kinds.contains(&BugKind::Sync),
        "P-CLHT sync bug missing under workers=4: {kinds:?}"
    );

    // The striped-ledger fast path absorbs all-duplicate campaigns without
    // the global lock but must still account for every one of them.
    assert_eq!(
        report.stats.campaigns, report.campaigns,
        "fast-path campaigns lost from the ledger statistics"
    );
    assert_eq!(report.coverage_timeline.len(), report.campaigns);
    let mono = report
        .coverage_timeline
        .windows(2)
        .all(|w| w[0].at <= w[1].at);
    assert!(mono, "merged per-worker timelines must be time-sorted");

    // Cross-worker exchange actually happened: siblings imported published
    // seeds, and campaigns advanced the shared frontier.
    let shared = telemetry::metrics::counter(telemetry::Counter::FleetSharedSeeds);
    assert!(shared >= 1, "no cross-worker seed imports recorded");
    let hits = telemetry::metrics::counter(telemetry::Counter::FleetFrontierHits);
    assert!(hits >= 1, "no campaign advanced the shared frontier");
    // Every worker executed campaigns (none starved behind a shared lock).
    let per_worker = telemetry::metrics::worker_execs();
    assert!(
        per_worker.iter().filter(|(_, n)| *n > 0).count() >= 2,
        "expected several workers to run campaigns, got {per_worker:?}"
    );
}

fn systematic_cfg(rng_seed: u64) -> FuzzConfig {
    let mut cfg = FuzzConfig::new("FAST-FAIR");
    cfg.strategy = StrategyKind::Systematic;
    cfg.workers = 1;
    cfg.threads = 2;
    cfg.max_campaigns = 8;
    cfg.wall_budget = Duration::from_secs(60);
    cfg.campaign_deadline = Duration::from_millis(300);
    cfg.rng_seed = rng_seed;
    cfg
}

#[test]
fn single_worker_fleet_reproduces_identical_bug_triples_run_to_run() {
    pmrace::register_builtins();
    let run = |seed: u64| {
        let report = Fuzzer::new(systematic_cfg(seed)).unwrap().run().unwrap();
        let triples: BTreeSet<_> = report.bug_triples.iter().cloned().collect();
        let bugs: BTreeSet<_> = report
            .bugs
            .iter()
            .map(|b| {
                (
                    format!("{}", b.kind),
                    b.write_label.clone(),
                    b.read_label.clone(),
                )
            })
            .collect();
        (triples, bugs)
    };
    let first = run(7);
    let second = run(7);
    assert_eq!(
        first, second,
        "identically-seeded workers=1 fleet runs diverged"
    );
}
